"""Tests for the multiprocessing mapping (static workload distribution)."""

import pytest

from repro.d4py import WorkflowGraph, run_graph

from tests.helpers import (
    AddOne,
    Collect,
    Double,
    IsPrime,
    KeyedCount,
    RangeProducer,
    pipeline,
)


def test_multi_matches_simple_on_linear_pipeline():
    def build():
        return pipeline(RangeProducer("src"), Double("dbl"), AddOne("inc"))

    sequential = run_graph(build(), input=20, mapping="simple")
    parallel = run_graph(build(), input=20, mapping="multi", num_processes=6)
    assert sorted(parallel.output_for("inc")) == sorted(sequential.output_for("inc"))


def test_multi_partition_reported():
    graph = pipeline(RangeProducer("NumberProducer"), IsPrime("IsPrime"), Collect("PrintPrime"))
    result = run_graph(graph, input=5, mapping="multi", num_processes=9)
    assert result.partition == {
        "NumberProducer": range(0, 1),
        "IsPrime": range(1, 5),
        "PrintPrime": range(5, 9),
    }


def test_multi_verbose_logs_iterations():
    graph = pipeline(RangeProducer("src"), Double("dbl"))
    result = run_graph(graph, input=8, mapping="multi", num_processes=4, verbose=True)
    processed = [l for l in result.logs if "Processed" in l]
    # one line per rank
    assert len(processed) == 4
    assert any("src (rank 0): Processed 8 iterations." in l for l in processed)


def test_multi_distributes_work_across_instances():
    graph = pipeline(RangeProducer("src"), Double("dbl"))
    result = run_graph(graph, input=30, mapping="multi", num_processes=4)
    dbl_counts = [v for k, v in result.iterations.items() if k.startswith("dbl")]
    assert sum(dbl_counts) == 30
    # shuffle routing balances items across the 3 dbl instances
    assert all(c == 10 for c in dbl_counts)


def test_multi_group_by_keeps_keys_together():
    g = WorkflowGraph()
    src = RangeProducer("src")

    class Tag(Double):
        def _process(self, value):
            return (value % 4, value)

    tag = Tag("tag")
    count = KeyedCount("count")
    g.connect(src, "output", tag, "input")
    g.connect(tag, "output", count, "input")
    result = run_graph(g, input=40, mapping="multi", num_processes=8)
    # Final running count per key must reach 10: all items of a key hit
    # the same instance.
    best = {}
    for key, n in result.output_for("count"):
        best[key] = max(best.get(key, 0), n)
    assert best == {0: 10, 1: 10, 2: 10, 3: 10}


def test_multi_worker_error_propagates():
    class Boom(Double):
        def _process(self, value):
            raise RuntimeError("kaboom")

    graph = pipeline(RangeProducer("src"), Boom("boom"))
    with pytest.raises(RuntimeError, match="worker failures"):
        run_graph(graph, input=2, mapping="multi", num_processes=2)


def test_multi_single_process_per_pe():
    graph = pipeline(RangeProducer("src"), Double("dbl"))
    result = run_graph(graph, input=5, mapping="multi", num_processes=2)
    assert sorted(result.output_for("dbl")) == [0, 2, 4, 6, 8]


def test_multi_global_grouping_single_collector():
    from repro.d4py import GenericPE

    class GlobalSum(GenericPE):
        def __init__(self, name=None):
            super().__init__(name)
            self._add_input("input", grouping="global")
            self._add_output("output")
            self.total = 0

        def _process(self, inputs):
            self.total += inputs["input"]
            return None

        def postprocess(self):
            self.log(f"total={self.total}")

    g = WorkflowGraph()
    src = RangeProducer("src")
    s = GlobalSum("sum")
    g.connect(src, "output", s, "input")
    result = run_graph(g, input=10, mapping="multi", num_processes=5)
    totals = [l for l in result.logs if "total=" in l]
    # only instance 0 receives data; others report total=0
    assert any("total=45" in l for l in totals)
    counts = [v for k, v in result.iterations.items() if k.startswith("sum")]
    assert sorted(counts, reverse=True)[0] == 10
    assert sum(counts) == 10


def test_multi_timings_reported():
    import time as _t

    class Slow(Double):
        def _process(self, value):
            _t.sleep(0.005)
            return value

    graph = pipeline(RangeProducer("src"), Slow("slow"))
    result = run_graph(graph, input=8, mapping="multi", num_processes=3)
    slow_time = sum(v for k, v in result.timings.items() if k.startswith("slow"))
    assert slow_time >= 0.03
    assert result.hotspot().startswith("slow")


def test_mpi_mapping_aliases_static_distribution():
    """The 'mpi' mapping enacts with the same static-partition semantics
    as 'multi' (documented substitution: no MPI runtime offline)."""
    graph = pipeline(RangeProducer("src"), Double("dbl"))
    result = run_graph(graph, input=6, mapping="mpi", num_processes=3)
    assert sorted(result.output_for("dbl")) == [0, 2, 4, 6, 8, 10]
    assert result.partition  # rank partition was computed
