"""Tests for registry export/import and server metrics."""

import json

import pytest

from repro.laminar import LaminarClient
from repro.laminar.client.client import ClientError

WF = '''
class Gen(ProducerPE):
    """Generates ones."""
    def _process(self, inputs):
        return 1

class Neg(IterativePE):
    """Negates numbers."""
    def _process(self, x):
        return -x

g_pe = Gen("Gen")
n_pe = Neg("Neg")
graph = WorkflowGraph()
graph.connect(g_pe, "output", n_pe, "input")
'''


@pytest.fixture()
def seeded():
    client = LaminarClient()
    client.register_Workflow(WF, name="neg_wf")
    client.register_PE(
        'class Extra(IterativePE):\n    """Extra PE."""\n'
        "    def _process(self, x):\n        return x\n"
    )
    return client


def test_export_contains_everything(seeded):
    dump = seeded.export_Registry()
    assert dump["version"] == 1
    assert {p["peName"] for p in dump["pes"]} == {"Gen", "Neg", "Extra"}
    assert dump["workflows"][0]["workflowName"] == "neg_wf"
    assert len(dump["workflows"][0]["peIds"]) == 2
    # embeddings travel with the dump
    assert dump["pes"][0]["sptEmbedding"]


def test_roundtrip_into_fresh_server(seeded):
    dump = seeded.export_Registry()
    fresh = LaminarClient()
    counts = fresh.import_Registry(dump)
    assert counts == {"pes": 3, "workflows": 1}

    # links survived with remapped ids
    pes = fresh.get_PEs_By_Workflow("neg_wf")
    assert {p["peName"] for p in pes} == {"Gen", "Neg"}

    # the imported workflow is actually runnable
    summary = fresh.run("neg_wf", input=3)
    assert summary.ok
    assert summary.outputs["Neg.output"] == [-1, -1, -1]

    # search works because embeddings were imported, not recomputed
    hits = fresh.search_Registry_Semantic("negates numbers")
    assert hits[0]["peName"] == "Neg"


def test_import_accepts_json_string(seeded):
    dump_text = json.dumps(seeded.export_Registry())
    fresh = LaminarClient()
    counts = fresh.import_Registry(dump_text)
    assert counts["pes"] == 3


def test_import_rejects_bad_version(seeded):
    with pytest.raises(ClientError) as err:
        seeded.import_Registry({"version": 99})
    assert err.value.status == 400


def test_import_rejects_garbage(seeded):
    with pytest.raises(ClientError):
        seeded.import_Registry({"pes": "nope"})


def test_export_empty_registry():
    dump = LaminarClient().export_Registry()
    assert dump["pes"] == [] and dump["workflows"] == []


# -- server metrics -----------------------------------------------------------


def test_stats_action_counts_requests(seeded):
    server = seeded._transport._server
    seeded.get_Registry()
    seeded.get_Registry()
    stats = server.handle({"action": "stats"})["body"]
    assert stats["total_requests"] >= 2
    assert stats["by_action"]["get_registry"]["requests"] >= 2
    assert stats["uptime_seconds"] >= 0


def test_stats_tracks_errors(seeded):
    server = seeded._transport._server
    with pytest.raises(ClientError):
        seeded.get_PE("no-such-pe")
    stats = server.handle({"action": "stats"})["body"]
    assert stats["by_action"]["get_pe"]["errors"] >= 1


def test_stats_latency_is_positive(seeded):
    server = seeded._transport._server
    seeded.get_Registry()
    stats = server.handle({"action": "stats"})["body"]
    assert stats["by_action"]["get_registry"]["mean_ms"] >= 0.0


def test_stats_requests_are_accounted(seeded):
    # Observability actions go through the same accounting as everything
    # else; the in-flight request is not in its own snapshot (the snapshot
    # is built before the request is recorded), but prior ones are.
    server = seeded._transport._server
    first = server.handle({"action": "stats"})["body"]
    assert "stats" not in first["by_action"]
    second = server.handle({"action": "stats"})["body"]
    assert second["by_action"]["stats"]["requests"] == 1
