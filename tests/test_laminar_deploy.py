"""Tests for container management (repro.laminar.deploy)."""

import pytest

from repro.laminar.deploy import ContainerSpec, Orchestrator

WF = """
class Ping(ProducerPE):
    def _process(self, inputs):
        print("pong")
        return 1

p = Ping("Ping")
graph = WorkflowGraph()
graph.add(p)
"""


@pytest.fixture()
def orchestrator():
    with Orchestrator() as orch:
        yield orch


def test_up_and_health(orchestrator):
    container = orchestrator.up(ContainerSpec(name="server"))
    assert container.alive
    assert container.healthy()
    assert container.port > 0


def test_container_serves_full_workflow(orchestrator):
    container = orchestrator.up(ContainerSpec(name="server"))
    client = container.client()
    try:
        client.register_Workflow(WF, name="ping_wf")
        summary = client.run("ping_wf", input=2)
        assert summary.ok
        assert summary.lines == ["pong", "pong"]
    finally:
        client.close()


def test_duplicate_name_rejected(orchestrator):
    orchestrator.up(ContainerSpec(name="server"))
    with pytest.raises(ValueError, match="already running"):
        orchestrator.up(ContainerSpec(name="server"))


def test_scale_to_replicas(orchestrator):
    replicas = orchestrator.scale("engine", 3)
    assert len(replicas) == 3
    assert len({c.port for c in replicas}) == 3
    # idempotent: scaling again reuses the live replicas
    again = orchestrator.scale("engine", 3)
    assert [c.port for c in again] == [c.port for c in replicas]


def test_status_reports_all(orchestrator):
    orchestrator.scale("node", 2)
    status = orchestrator.status()
    assert set(status) == {"node-0", "node-1"}
    assert all(s["alive"] and s["healthy"] for s in status.values())


def test_restart_on_failure(orchestrator):
    container = orchestrator.up(ContainerSpec(name="crashy"))
    container.process.terminate()
    container.process.join(timeout=5)
    assert not container.healthy()
    restarted = orchestrator.ensure_healthy()
    assert restarted == ["crashy"]
    fresh = orchestrator.containers["crashy"]
    assert fresh.healthy()
    assert fresh.restarts == 1


def test_ensure_healthy_noop_when_fine(orchestrator):
    orchestrator.up(ContainerSpec(name="fine"))
    assert orchestrator.ensure_healthy() == []


def test_any_healthy_picks_live_replica(orchestrator):
    orchestrator.scale("web", 2)
    victim = orchestrator.containers["web-0"]
    victim.stop()
    survivor = orchestrator.any_healthy()
    assert survivor.spec.name == "web-1"


def test_any_healthy_raises_when_none(orchestrator):
    with pytest.raises(RuntimeError, match="no healthy"):
        orchestrator.any_healthy()


def test_down_stops_everything(orchestrator):
    containers = orchestrator.scale("svc", 2)
    orchestrator.down()
    assert orchestrator.containers == {}
    assert all(not c.alive for c in containers)


def test_replicas_are_isolated(orchestrator):
    """Each replica owns its registry — registrations do not leak."""
    a, b = orchestrator.scale("iso", 2)
    ca, cb = a.client(), b.client()
    try:
        ca.register_PE(
            "class OnlyInA(IterativePE):\n    def _process(self, x):\n        return x\n"
        )
        assert len(ca.get_Registry()["pes"]) == 1
        assert len(cb.get_Registry()["pes"]) == 0
    finally:
        ca.close()
        cb.close()


def test_standalone_server_module(tmp_path):
    """`python -m repro.laminar.server` serves real clients."""
    import re
    import subprocess
    import sys
    import time

    from repro.laminar import LaminarClient

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.laminar.server", "--db", str(tmp_path / "r.db")],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        assert match, f"unexpected banner: {line!r}"
        host, port = match.group(1), int(match.group(2))
        client = LaminarClient.connect(host, port)
        client.register_PE(
            "class Served(IterativePE):\n    def _process(self, x):\n        return x\n"
        )
        assert client.get_PE("Served")["peName"] == "Served"
        client.close()
    finally:
        proc.terminate()
        proc.wait(timeout=10)
