"""Reusable PEs and workflow builders shared across the test suite."""

from __future__ import annotations

import random
from typing import Any

from repro.d4py import (
    ConsumerPE,
    GenericPE,
    IterativePE,
    ProducerPE,
    WorkflowGraph,
)


class RangeProducer(ProducerPE):
    """Emits 0, 1, 2, ... one value per iteration."""

    def __init__(self, name: str | None = None, start: int = 0) -> None:
        super().__init__(name)
        self._next = start

    def _process(self, inputs: Any) -> int:
        value = self._next
        self._next += 1
        return value


class RandomProducer(ProducerPE):
    """Emits seeded pseudo-random integers in [1, 1000] (paper's Fig 5)."""

    def __init__(self, name: str | None = None, seed: int = 7) -> None:
        super().__init__(name)
        self._rng = random.Random(seed)

    def _process(self, inputs: Any) -> int:
        return self._rng.randint(1, 1000)


class IsPrime(IterativePE):
    """The paper's Listing 1: forwards a number iff it is prime."""

    def _process(self, num: int):
        if num > 1 and all(num % i != 0 for i in range(2, int(num**0.5) + 1)):
            return num
        return None


class Double(IterativePE):
    def _process(self, value):
        return value * 2


class AddOne(IterativePE):
    def _process(self, value):
        return value + 1


class Collect(ConsumerPE):
    """Sink that logs each value (used to observe consumer-side delivery)."""

    def _process(self, data) -> None:
        self.log(f"got {data!r}")


class KeyedCount(GenericPE):
    """Stateful group-by counter: emits (key, running_count) per item.

    Input items are ``(key, value)`` tuples grouped on element 0, so all
    items with the same key must reach the same instance for counts to be
    correct — this is what the group_by tests verify.
    """

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._add_input("input", grouping=[0])
        self._add_output("output")
        self.counts: dict[Any, int] = {}

    def _process(self, inputs):
        key, _value = inputs["input"]
        self.counts[key] = self.counts.get(key, 0) + 1
        return {"output": (key, self.counts[key])}


class WordSplit(IterativePE):
    """Splits a line into words, one write per word."""

    def _process(self, line: str):
        for word in str(line).split():
            self.write(self.OUTPUT_NAME, (word, 1))
        return None


def pipeline(*pes: GenericPE) -> WorkflowGraph:
    """Chain single-port PEs into a linear workflow graph."""
    graph = WorkflowGraph()
    for upstream, downstream in zip(pes, pes[1:]):
        graph.connect(upstream, "output", downstream, "input")
    if len(pes) == 1:
        graph.add(pes[0])
    return graph


def isprime_graph() -> WorkflowGraph:
    """The paper's isprime_wf: RandomProducer -> IsPrime -> sink (leaf)."""
    return pipeline(RandomProducer("NumberProducer"), IsPrime("IsPrime"))
