"""Multi-tenant enforcement tests.

Covers the four tenancy pillars end to end:

* **Auth** — constant-time password verification, sliding-TTL session
  tokens with logout and eviction, long-lived API keys, and the
  ``require_auth`` mode that disables the guest fallback.
* **Isolation** — every read is scoped to the caller's rows and every
  cross-tenant read/mutation/job verb answers 404 (not 403: existence
  must not leak).
* **Quotas** — per-tenant registry-row, queued-job and running-job caps
  answering 429 at the service layer.
* **Fair share** — deficit round-robin over tenant weights at the queue,
  proven by a starvation bound: a tenant flooding 500 jobs cannot push
  another tenant's p95 queue wait beyond 3x its unloaded baseline.
"""

from __future__ import annotations

import time

import pytest

from repro.laminar.client.client import ClientError, LaminarClient
from repro.laminar.jobs import Job, JobManager, JobQueue, JobSpec, QueueFull
from repro.laminar.server.app import LaminarServer
from repro.laminar.server.services import ServiceError
from repro.laminar.tenancy import QuotaConfig, TenantQuota

WF = """
class Producer(ProducerPE):
    def _process(self, inputs):
        return 10
class AddOne(IterativePE):
    def _process(self, value):
        print("adding to", value)
        return value + 1
graph = WorkflowGraph()
graph.connect(Producer("P"), "output", AddOne("A"), "input")
"""

PE_CODE = """
class WordCounter(IterativePE):
    def _process(self, value):
        return len(value.split())
"""


class _FakeOutcome:
    status = "success"
    error = None

    @staticmethod
    def to_public():
        return {"status": "success", "outputs": {}}


class _FakeStream:
    def __iter__(self):
        return iter(())

    def close(self):
        pass


class FakeEngine:
    """Engine stub with a fixed service time — fairness tests need
    thousands of enactments, not real workflow runs."""

    def __init__(self, delay: float = 0.002) -> None:
        self.delay = delay

    def execute_streaming(self, code, **kwargs):
        time.sleep(self.delay)
        return _FakeStream(), _FakeOutcome()


@pytest.fixture
def server():
    srv = LaminarServer(require_auth=True)
    yield srv
    srv.close()


def login(server, name: str, password: str = "pw") -> LaminarClient:
    client = LaminarClient(server=server)
    client.register(name, password)
    client.login(name, password)
    return client


# -- auth: hashing, sessions, API keys ----------------------------------------

def test_password_verify_is_constant_time(server, monkeypatch):
    """The salted-hash comparison must go through hmac.compare_digest —
    ``==`` short-circuits on the first differing byte (timing oracle)."""
    import repro.laminar.server.services as services

    calls = []
    real = services.hmac.compare_digest

    def spy(a, b):
        calls.append((a, b))
        return real(a, b)

    monkeypatch.setattr(services.hmac, "compare_digest", spy)
    client = login(server, "alice")
    assert calls, "login verified a password without compare_digest"
    calls.clear()
    with pytest.raises(ClientError) as err:
        client.login("alice", "wrong-password")
    assert err.value.status == 401
    assert calls, "a rejected password bypassed compare_digest"


def test_session_token_expires_and_is_evicted(server, monkeypatch):
    client = login(server, "alice")
    assert client.whoami()["userName"] == "alice"
    now = time.time()
    monkeypatch.setattr(time, "time", lambda: now + server.auth.token_ttl + 1)
    with pytest.raises(ClientError) as err:
        client.whoami()
    assert err.value.status == 401
    assert not server.auth._tokens  # expired tokens are swept, not leaked


def test_session_ttl_slides_on_use(server, monkeypatch):
    client = login(server, "alice")
    token = client._token
    _, first_expiry = server.auth._tokens[token]
    now = time.time()
    half_life = server.auth.token_ttl / 2
    monkeypatch.setattr(time, "time", lambda: now + half_life)
    assert client.whoami()["userName"] == "alice"
    _, restamped = server.auth._tokens[token]
    assert restamped > first_expiry  # activity pushed the expiry out


def test_logout_revokes_token(server):
    client = login(server, "alice")
    assert client.logout()["loggedOut"] is True
    with pytest.raises(ClientError) as err:
        client.whoami()
    assert err.value.status == 401
    assert client.logout()["loggedOut"] is False  # idempotent


def test_api_key_lifecycle(server):
    client = login(server, "alice")
    minted = client.create_Api_Key("ci")
    assert minted["apiKey"].startswith("lmk_")
    client.logout()

    client.use_api_key(minted["apiKey"])
    assert client.whoami()["userName"] == "alice"
    # Only the digest is stored: the table never holds the plaintext.
    record = server.api_keys.get(minted["keyId"])
    assert minted["apiKey"] not in (record.keyDigest, record.name)

    assert client.revoke_Api_Key(minted["keyId"])["revoked"] == minted["keyId"]
    with pytest.raises(ClientError) as err:
        client.whoami()
    assert err.value.status == 401


def test_require_auth_rejects_guests(server):
    anonymous = LaminarClient(server=server)
    with pytest.raises(ClientError) as err:
        anonymous.register_PE(PE_CODE)
    assert err.value.status == 401
    # Liveness stays anonymous (the supervisor pings without a token)...
    assert anonymous._call("ping")["pong"] is True
    # ...but a *presented* bad credential fails closed even on ping.
    anonymous._token = "forged"
    with pytest.raises(ClientError) as err:
        anonymous._call("ping")
    assert err.value.status == 401


def test_guest_fallback_still_works_without_require_auth():
    srv = LaminarServer()
    try:
        client = LaminarClient(server=srv)
        body = client.register_PE(PE_CODE)
        assert body["peName"] == "WordCounter"
    finally:
        srv.close()


# -- isolation: reads, mutations, jobs, search --------------------------------

def test_cross_tenant_reads_answer_404(server):
    alice = login(server, "alice")
    bob = login(server, "bob")
    pe = alice.register_PE(PE_CODE)
    wf = alice.register_Workflow(WF, name="pipeline")["workflow"]

    for call in (
        lambda: bob.get_PE(pe["peId"]),
        lambda: bob.get_Workflow(wf["workflowId"]),
        lambda: bob.describe(pe["peId"], kind="pe"),
        lambda: bob.visualize_Workflow(wf["workflowId"]),
    ):
        with pytest.raises(ClientError) as err:
            call()
        assert err.value.status == 404  # not 403: existence must not leak

    listing = bob.get_Registry()
    assert listing["pes"] == [] and listing["workflows"] == []
    assert {p["peName"] for p in alice.get_Registry()["pes"]} >= {"WordCounter"}


def test_cross_tenant_mutations_answer_404(server):
    alice = login(server, "alice")
    bob = login(server, "bob")
    pe = alice.register_PE(PE_CODE)

    for call in (
        lambda: bob.update_PE_Description(pe["peId"], "hijacked"),
        lambda: bob.remove_PE(pe["peId"]),
    ):
        with pytest.raises(ClientError) as err:
            call()
        assert err.value.status == 404

    bob.remove_All()  # scoped: removes bob's (empty) rows only
    assert alice.get_PE(pe["peId"])["description"] != "hijacked"


def test_cross_tenant_job_verbs_answer_404(server):
    alice = login(server, "alice")
    bob = login(server, "bob")
    alice.register_Workflow(WF, name="pipeline")
    job = alice.submit_Job("pipeline")

    for call in (
        lambda: bob.job_Status(job["jobId"]),
        lambda: bob.job_Result(job["jobId"]),
        lambda: bob.cancel_Job(job["jobId"]),
    ):
        with pytest.raises(ClientError) as err:
            call()
        assert err.value.status == 404
    assert bob.list_Jobs() == []
    assert alice.wait_For_Job(job["jobId"])["state"] == "SUCCEEDED"
    assert all(j["tenant"] == "alice" for j in alice.list_Jobs())


def test_search_is_scoped_to_tenant(server):
    alice = login(server, "alice")
    bob = login(server, "bob")
    alice.register_PE(PE_CODE, description="count words in a stream")

    assert bob.search_Registry_Literal("word")["pes"] == []
    assert bob.search_Registry_Semantic("count words", kind="pe") == []
    assert bob.code_Recommendation(PE_CODE, kind="pe") == []
    hits = alice.search_Registry_Semantic("count words", kind="pe")
    assert any(hit["peName"] == "WordCounter" for hit in hits)


# -- quotas -------------------------------------------------------------------

def test_registry_row_quota_429():
    quotas = QuotaConfig(default=TenantQuota(max_registry_rows=2))
    srv = LaminarServer(require_auth=True, quotas=quotas)
    try:
        alice = login(srv, "alice")
        alice.register_PE(PE_CODE)
        alice.register_PE(PE_CODE.replace("WordCounter", "CharCounter"))
        with pytest.raises(ClientError) as err:
            alice.register_PE(PE_CODE.replace("WordCounter", "LineCounter"))
        assert err.value.status == 429
        # Workflow registration counts the workflow plus its PEs.
        with pytest.raises(ClientError) as err:
            alice.register_Workflow(WF, name="pipeline")
        assert err.value.status == 429
        # Quotas are per tenant: bob is unaffected by alice's consumption.
        login(srv, "bob").register_PE(PE_CODE)
    finally:
        srv.close()


def test_queued_job_quota_429():
    quotas = QuotaConfig(default=TenantQuota(max_queued_jobs=2))
    manager = JobManager(
        engine=FakeEngine(delay=0.5), workers=1, queue_capacity=64, quotas=quotas
    )
    try:
        spec = lambda: JobSpec(workflow_code="", user_name="alice")  # noqa: E731
        manager.submit(spec())  # occupies the single worker
        deadline = time.monotonic() + 5
        while manager.queue.depth_of("alice") and time.monotonic() < deadline:
            time.sleep(0.005)
        manager.submit(spec())
        manager.submit(spec())
        with pytest.raises(QueueFull) as err:
            manager.submit(spec())
        assert "alice" in str(err.value)
        assert err.value.tenant == "alice"
    finally:
        manager.shutdown(wait=False)


def test_running_cap_gates_dequeue():
    quotas = QuotaConfig(default=TenantQuota(max_running_jobs=1))
    q = JobQueue(capacity=8, quotas=quotas)
    first = Job(job_id=1, spec=JobSpec(workflow_code="", user_name="alice"))
    second = Job(job_id=2, spec=JobSpec(workflow_code="", user_name="alice"))
    q.put(first)
    q.put(second)
    assert q.get(timeout=0.1) is first
    assert q.get(timeout=0.05) is None  # lane gated at its running cap
    assert q.running_of("alice") == 1
    q.task_done(first)
    assert q.get(timeout=0.1) is second


def test_running_cap_does_not_block_other_tenants():
    quotas = QuotaConfig(default=TenantQuota(max_running_jobs=1))
    q = JobQueue(capacity=8, quotas=quotas)
    a1 = Job(job_id=1, spec=JobSpec(workflow_code="", user_name="a"))
    a2 = Job(job_id=2, spec=JobSpec(workflow_code="", user_name="a"))
    b1 = Job(job_id=3, spec=JobSpec(workflow_code="", user_name="b"))
    for job in (a1, a2, b1):
        q.put(job)
    assert q.get(timeout=0.1) is a1
    assert q.get(timeout=0.1) is b1  # a's cap must not gate b


def test_quota_config_roundtrip_and_load(tmp_path):
    config = QuotaConfig(
        default=TenantQuota(max_queued_jobs=10),
        tenants={"alice": TenantQuota(max_registry_rows=5, weight=3)},
    )
    again = QuotaConfig.from_dict(config.to_dict())
    assert again.for_tenant("alice").max_registry_rows == 5
    assert again.weight_of("alice") == 3
    assert again.for_tenant("bob").max_queued_jobs == 10

    path = tmp_path / "quotas.json"
    path.write_text(
        '{"default": {"max_queued_jobs": 4}, '
        '"tenants": {"bulk": {"weight": 0}}}'
    )
    loaded = QuotaConfig.load(str(path))
    assert loaded.for_tenant("x").max_queued_jobs == 4
    assert loaded.weight_of("bulk") == 1  # weights clamp to >= 1

    with pytest.raises(ValueError):
        TenantQuota.from_dict({"max_queued_jobs": 1, "nope": 2})


# -- fair share ---------------------------------------------------------------

def _job(job_id: int, tenant: str, priority: int = 0) -> Job:
    return Job(
        job_id=job_id,
        spec=JobSpec(workflow_code="", user_name=tenant, priority=priority),
    )


def test_drr_alternates_equal_weights():
    q = JobQueue(capacity=32)
    for i in range(3):
        q.put(_job(i, "a"))
    for i in range(3, 6):
        q.put(_job(i, "b"))
    order = [q.get(timeout=0.1).spec.tenant for _ in range(6)]
    assert order == ["a", "b", "a", "b", "a", "b"]


def test_drr_respects_weights():
    quotas = QuotaConfig(
        default=TenantQuota(),
        tenants={"heavy": TenantQuota(weight=2)},
    )
    q = JobQueue(capacity=32, quotas=quotas)
    for i in range(4):
        q.put(_job(i, "heavy"))
    for i in range(4, 6):
        q.put(_job(i, "light"))
    order = [q.get(timeout=0.1).spec.tenant for _ in range(6)]
    assert order == ["heavy", "heavy", "light", "heavy", "heavy", "light"]


def test_priority_fifo_preserved_within_tenant():
    q = JobQueue(capacity=32)
    q.put(_job(1, "a", priority=0))
    q.put(_job(2, "a", priority=5))
    q.put(_job(3, "a", priority=5))
    order = [q.get(timeout=0.1).job_id for _ in range(3)]
    assert order == [2, 3, 1]  # highest priority first, FIFO within it


def _p95(values: list[float]) -> float:
    ranked = sorted(values)
    return ranked[min(len(ranked) - 1, int(0.95 * len(ranked)))]


def test_flooding_tenant_cannot_starve_another():
    """Tenant A floods 500 jobs; B's p95 queue wait stays within 3x its
    unloaded baseline (floored — sub-millisecond baselines are noise)."""

    def measure(flood: int) -> float:
        manager = JobManager(
            engine=FakeEngine(delay=0.002), workers=2, queue_capacity=600
        )
        try:
            for i in range(flood):
                manager.submit(JobSpec(workflow_code="", user_name="flooder"))
            victims = [
                manager.submit(JobSpec(workflow_code="", user_name="victim"))
                for _ in range(20)
            ]
            waits = []
            for job in victims:
                done = manager.wait(job.job_id, timeout=60)
                assert done.terminal
                waits.append(done.queue_seconds)
            return _p95(waits)
        finally:
            manager.shutdown(wait=False)

    baseline = max(measure(flood=0), 0.05)
    loaded = measure(flood=500)
    assert loaded <= 3 * baseline, (
        f"victim p95 wait {loaded:.3f}s exceeds 3x baseline {baseline:.3f}s"
    )


# -- per-tenant observability -------------------------------------------------

def test_stats_and_metrics_carry_tenant_rows(server):
    alice = login(server, "alice")
    bob = login(server, "bob")
    alice.register_Workflow(WF, name="pipeline")
    job = alice.submit_Job("pipeline")
    alice.wait_For_Job(job["jobId"])
    bob.get_Registry()

    stats = server.handle({"action": "stats"})["body"]
    assert stats["tenants"]["alice"]["requests"] > 0
    assert stats["tenants"]["bob"]["requests"] > 0
    assert stats["tenants"]["alice"]["jobs_finished"] == 1
    assert stats["jobs"]["queue"]["tenants"]["alice"]["served"] == 1

    exposition = server.handle(
        {"action": "get_metrics", "token": alice._token}
    )["body"]["text"]
    assert 'tenant="alice"' in exposition

    # Intrinsic actions are attributed to a presented credential's
    # tenant, while tokenless (or stale-token) scrapes stay anonymous
    # and never 401 — a scraper needs no account even under
    # require-auth.  Snapshots exclude their own in-flight call, so the
    # token'd call below is visible one snapshot later.
    before = server.handle({"action": "stats"})["body"]
    server.handle({"action": "stats", "token": alice._token})
    after = server.handle({"action": "stats", "token": "stale"})
    assert after["status"] == 200
    assert (
        after["body"]["tenants"]["alice"]["requests"]
        == before["tenants"]["alice"]["requests"] + 1
    )


def test_service_error_shape_for_quota():
    err = ServiceError(429, "tenant 'a' is at its queued-job quota (2)")
    assert err.status == 429 and "quota" in err.message
