"""Tests for the PE standard library and functional helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.d4py import WorkflowGraph, run_graph
from repro.d4py.functional import (
    SimpleFunctionPE,
    chain,
    create_iterative,
    producer_from,
)
from repro.d4py.lib import (
    BatchPE,
    DistinctPE,
    FilterPE,
    FlatMapPE,
    KeyedReducePE,
    MapPE,
    RateLimitPE,
    SlidingWindowPE,
    TakePE,
    ZipPE,
)


def run_through(pe, items, extra=None):
    """Run items through a single PE (plus optional downstream PE)."""
    src = producer_from(items, name="src")
    graph = WorkflowGraph()
    graph.connect(src, "output", pe, "input")
    if extra is not None:
        graph.connect(pe, "output", extra, "input")
    result = run_graph(graph, input=len(items))
    leaf = (extra or pe).name
    return result.output_for(leaf)


# -- functional helpers ------------------------------------------------------


def test_simple_function_pe():
    assert run_through(SimpleFunctionPE(lambda x: x * 10), [1, 2, 3]) == [10, 20, 30]


def test_simple_function_pe_partial_args():
    pe = SimpleFunctionPE(round, 1)
    assert run_through(pe, [1.24, 5.67]) == [1.2, 5.7]


def test_simple_function_pe_name_defaults_to_fn():
    def halve(x):
        return x / 2

    assert SimpleFunctionPE(halve).name.startswith("halve_pe")


def test_create_iterative_builds_class():
    def double_it(x):
        """Doubles the input."""
        return x * 2

    cls = create_iterative(double_it)
    assert cls.__name__ == "DoubleItPE"
    assert "Doubles" in cls.__doc__
    assert run_through(cls(), [1, 2]) == [2, 4]


def test_chain_lifts_callables():
    graph = chain(producer_from(["ab", "cd"], name="src"), str.upper)
    result = run_graph(graph, input=2)
    assert result.all_outputs() == ["AB", "CD"]


def test_chain_requires_stages():
    with pytest.raises(ValueError):
        chain()


def test_chain_rejects_non_callable():
    with pytest.raises(TypeError):
        chain(producer_from([1]), "not callable")


# -- map / filter / flatmap -------------------------------------------------------


def test_map_pe():
    assert run_through(MapPE(lambda x: x + 1), [0, 1]) == [1, 2]


def test_filter_pe():
    assert run_through(FilterPE(lambda x: x % 2 == 0), list(range(6))) == [0, 2, 4]


def test_flat_map_pe():
    assert run_through(FlatMapPE(lambda s: s.split()), ["a b", "c"]) == ["a", "b", "c"]


def test_flat_map_empty_expansion():
    assert run_through(FlatMapPE(lambda s: []), ["x"]) == []


# -- windowing / batching -------------------------------------------------------------


def test_sliding_window():
    out = run_through(SlidingWindowPE(3), [1, 2, 3, 4, 5])
    assert out == [[1, 2, 3], [2, 3, 4], [3, 4, 5]]


def test_tumbling_window():
    out = run_through(SlidingWindowPE(2, step=2), [1, 2, 3, 4, 5, 6])
    assert out == [[1, 2], [3, 4], [5, 6]]


def test_window_validates_params():
    with pytest.raises(ValueError):
        SlidingWindowPE(0)
    with pytest.raises(ValueError):
        SlidingWindowPE(2, step=0)


def test_batch_pe_flushes_remainder():
    out = run_through(BatchPE(2), [1, 2, 3, 4, 5])
    assert out == [[1, 2], [3, 4], [5]]


def test_batch_exact_multiple():
    out = run_through(BatchPE(3), [1, 2, 3])
    assert out == [[1, 2, 3]]


def test_batch_validates_size():
    with pytest.raises(ValueError):
        BatchPE(0)


# -- keyed reduce / distinct / take -------------------------------------------------------


def test_keyed_reduce_running_sums():
    items = [("a", 1), ("b", 10), ("a", 2), ("b", 20)]
    out = run_through(KeyedReducePE(lambda acc, v: acc + v), items)
    assert out == [("a", 1), ("b", 10), ("a", 3), ("b", 30)]


def test_keyed_reduce_custom_initial():
    items = [("x", 2), ("x", 3)]
    out = run_through(KeyedReducePE(lambda acc, v: acc * v, initial=1), items)
    assert out[-1] == ("x", 6)


def test_keyed_reduce_parallel_state():
    items = [(i % 3, 1) for i in range(30)]
    src = producer_from(items, name="src")
    red = KeyedReducePE(lambda acc, v: acc + v, name="red")
    g = WorkflowGraph()
    g.connect(src, "output", red, "input")
    result = run_graph(g, input=30, mapping="multi", num_processes=6)
    best = {}
    for key, acc in result.output_for("red"):
        best[key] = max(best.get(key, 0), acc)
    assert best == {0: 10, 1: 10, 2: 10}


def test_distinct_pe():
    assert run_through(DistinctPE(), [1, 2, 1, 3, 2]) == [1, 2, 3]


def test_distinct_with_key():
    out = run_through(DistinctPE(key=str.lower), ["A", "a", "B"])
    assert out == ["A", "B"]


def test_take_pe():
    assert run_through(TakePE(2), [9, 8, 7, 6]) == [9, 8]


def test_take_zero():
    assert run_through(TakePE(0), [1, 2]) == []


def test_take_validates():
    with pytest.raises(ValueError):
        TakePE(-1)


# -- rate limiting --------------------------------------------------------------------------


def test_rate_limit_drops_rapid_items():
    out = run_through(RateLimitPE(10.0), [1, 2, 3])
    assert out == [1]  # items arrive back-to-back, only the first passes


def test_rate_limit_validates():
    with pytest.raises(ValueError):
        RateLimitPE(0)


# -- zip join ----------------------------------------------------------------------------------


def test_zip_pairs_in_order():
    g = WorkflowGraph()
    left = producer_from([1, 2, 3], name="left_src")
    right = producer_from(["a", "b", "c"], name="right_src")
    z = ZipPE("zip")
    g.connect(left, "output", z, "left")
    g.connect(right, "output", z, "right")
    result = run_graph(g, input=3)
    assert sorted(result.output_for("zip")) == [(1, "a"), (2, "b"), (3, "c")]


def test_zip_buffers_uneven_streams():
    g = WorkflowGraph()
    left = producer_from([1, 2, 3], name="l")
    right = producer_from(["only"], name="r")
    z = ZipPE("zip")
    g.connect(left, "output", z, "left")
    g.connect(right, "output", z, "right")
    result = run_graph(g, input={"l": 3, "r": 1})
    assert result.output_for("zip") == [(1, "only")]


# -- properties ------------------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(), max_size=30), st.integers(1, 5))
def test_batch_concat_roundtrip(items, size):
    """Concatenating batches reproduces the input stream exactly."""
    out = run_through(BatchPE(size), items) if items else []
    flattened = [x for batch in out for x in batch]
    assert flattened == items


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(-5, 5), max_size=30))
def test_map_filter_composition(items):
    if not items:
        return
    graph = chain(
        producer_from(items, name="src"),
        MapPE(lambda x: x * 2, name="dbl"),
        FilterPE(lambda x: x >= 0, name="pos"),
    )
    result = run_graph(graph, input=len(items))
    assert result.output_for("pos") == [x * 2 for x in items if x * 2 >= 0]


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 3), min_size=1, max_size=40), st.integers(2, 4))
def test_window_contents_are_stream_slices(items, size):
    out = run_through(SlidingWindowPE(size), items)
    for i, window in enumerate(out):
        assert window == items[i : i + size]
