"""Fault-injection primitives for the stress suite.

Two chaos layers, matching the two substrates the client–server path
depends on:

* :class:`FaultyRedisSim` — a :class:`~repro.d4py.redisim.RedisSim`
  whose operations can be slowed down (simulated broker latency) and
  whose condition-variable wake-ups can be selectively dropped
  (simulated lost notifies — the class of bug behind the
  ``delete``/``wait_for_zero`` hang).
* :class:`ChaosProxy` — a socket-level TCP proxy between a
  ``TcpClientTransport`` and the real server that can cut the
  server→client byte stream mid-frame, dribble it out in tiny partial
  writes, delay it, or black-hole it entirely while keeping the
  connection open.

Both are test-only: they live under ``tests/`` and wrap the production
classes rather than forking them.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.d4py.redisim import RedisSim

__all__ = ["FaultyRedisSim", "ChaosProxy"]


class _DroppyCondition(threading.Condition):
    """A Condition that can swallow a budgeted number of notify_all calls."""

    def __init__(self) -> None:
        super().__init__()
        self.drop_budget = 0
        self.dropped = 0

    def notify_all(self) -> None:
        if self.drop_budget > 0:
            self.drop_budget -= 1
            self.dropped += 1
            return
        super().notify_all()


class FaultyRedisSim(RedisSim):
    """RedisSim with injectable latency and droppable wake-ups."""

    def __init__(self, op_delay: float = 0.0) -> None:
        super().__init__()
        self._lock = _DroppyCondition()
        self.op_delay = op_delay

    # -- fault controls -------------------------------------------------------

    def drop_next_notifies(self, n: int) -> None:
        """Swallow the next ``n`` broker wake-ups (lost-notify injection)."""
        with self._lock:
            self._lock.drop_budget += n

    @property
    def dropped_notifies(self) -> int:
        """How many wake-ups the fault injection swallowed so far."""
        return self._lock.dropped

    def _delay(self) -> None:
        if self.op_delay:
            time.sleep(self.op_delay)

    # -- delayed operations (simulated broker round-trip latency) -------------

    def lpush(self, key, *values):
        self._delay()
        return super().lpush(key, *values)

    def rpush(self, key, *values):
        self._delay()
        return super().rpush(key, *values)

    def brpop(self, key, timeout=None):
        self._delay()
        return super().brpop(key, timeout)

    def blpop(self, key, timeout=None):
        self._delay()
        return super().blpop(key, timeout)

    def incr(self, key, amount=1):
        self._delay()
        return super().incr(key, amount)

    def set(self, key, value):
        self._delay()
        return super().set(key, value)

    def delete(self, *keys):
        self._delay()
        return super().delete(*keys)


class ChaosProxy:
    """A localhost TCP proxy that mangles the server→client byte stream.

    Parameters
    ----------
    target:
        ``(host, port)`` of the real server.
    cut_after:
        Forward only this many server→client bytes per connection, then
        close both sides — lands mid-frame for any small limit.
    chunk:
        Forward server→client data in chunks of this many bytes
        (exercises partial-write reassembly on the client).
    delay:
        Sleep this long between forwarded chunks.
    blackhole:
        Silently drop all server→client bytes while keeping the
        connection open — the "server process is alive but wedged /
        network is eating packets" failure.

    Client→server bytes always flow untouched, so requests reach the
    server; only the response path is chaotic.
    """

    def __init__(
        self,
        target: tuple[str, int],
        cut_after: int | None = None,
        chunk: int | None = None,
        delay: float = 0.0,
        blackhole: bool = False,
    ) -> None:
        self.target = target
        self.cut_after = cut_after
        self.chunk = chunk
        self.delay = delay
        self.blackhole = blackhole
        self.connections = 0
        self._stop = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> tuple[str, int]:
        """The proxy's (host, port) — point the client transport here."""
        return self._listener.getsockname()

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        for thread in self._threads:
            thread.join(timeout=1.0)

    # -- internals ------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client_sock, _ = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            try:
                server_sock = socket.create_connection(self.target, timeout=5.0)
            except OSError:
                client_sock.close()
                continue
            for src, dst, chaotic in (
                (client_sock, server_sock, False),
                (server_sock, client_sock, True),
            ):
                thread = threading.Thread(
                    target=self._pump,
                    args=(src, dst, chaotic),
                    name="chaos-proxy-pump",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    def _pump(self, src: socket.socket, dst: socket.socket, chaotic: bool) -> None:
        forwarded = 0
        try:
            while not self._stop.is_set():
                try:
                    data = src.recv(4096)
                except OSError:
                    break
                if not data:
                    break
                if not chaotic:
                    dst.sendall(data)
                    continue
                if self.blackhole:
                    continue  # connection stays up; bytes vanish
                if self.cut_after is not None:
                    remaining = self.cut_after - forwarded
                    if remaining <= 0:
                        break
                    data = data[:remaining]
                step = self.chunk or len(data)
                for i in range(0, len(data), step):
                    if self.delay:
                        time.sleep(self.delay)
                    dst.sendall(data[i : i + step])
                forwarded += len(data)
                if self.cut_after is not None and forwarded >= self.cut_after:
                    break
        finally:
            for sock in (src, dst):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
