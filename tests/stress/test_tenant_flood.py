"""Tenant-flood stress: one tenant's burst must not delay another's
liveness traffic or queued work.

A flooding tenant pours hundreds of submissions into the job queue over
TCP while a victim tenant keeps a separate connection alive with
heartbeat-style pings and one real submission.  Fair-share dequeue plus
the thread-per-connection transport must keep the victim responsive:
no heartbeat timeouts, bounded ping latency, and the victim's job
finishing long before the flood drains.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.laminar.client.client import ClientError, LaminarClient
from repro.laminar.server.app import LaminarServer
from repro.laminar.transport.tcp import TcpServerTransport

WF = """
class Producer(ProducerPE):
    def _process(self, inputs):
        return 1

graph = WorkflowGraph()
graph.add(Producer("P"))
"""


class _FakeOutcome:
    status = "success"
    error = None

    @staticmethod
    def to_public():
        return {"status": "success", "outputs": {}}


class _FakeStream:
    def __iter__(self):
        return iter(())

    def close(self):
        pass


class FakeEngine:
    def __init__(self, delay: float = 0.002) -> None:
        self.delay = delay

    def execute_streaming(self, code, **kwargs):
        time.sleep(self.delay)
        return _FakeStream(), _FakeOutcome()


@pytest.fixture()
def tcp_server():
    server = LaminarServer(require_auth=True, job_queue_capacity=600)
    # Fixed 2ms enactments: the stress is on queueing and the transport,
    # not on real workflow runs.
    server.job_manager.pool.engine = FakeEngine(delay=0.002)
    transport = TcpServerTransport(server, heartbeat_interval=0.2).start()
    try:
        yield transport.address
    finally:
        transport.stop()
        server.close()


def _tenant(address, name: str) -> LaminarClient:
    client = LaminarClient.connect(*address, idle_deadline=2.0)
    client.register(name, "pw")
    client.login(name, "pw")
    return client


def test_flooding_tenant_does_not_delay_victim(tcp_server):
    flooder = _tenant(tcp_server, "flooder")
    victim = _tenant(tcp_server, "victim")
    try:
        flooder.register_Workflow(WF, name="flood-wf")
        victim.register_Workflow(WF, name="victim-wf")

        flood_errors: list[Exception] = []

        def flood() -> None:
            for _ in range(300):
                try:
                    flooder.submit_Job("flood-wf")
                except ClientError as exc:  # queue-full backpressure is fine
                    if exc.status != 429:
                        flood_errors.append(exc)
                        return

        pump = threading.Thread(target=flood, name="tenant-flood")
        pump.start()
        time.sleep(0.05)  # let the queue fill before measuring

        # Heartbeat-style liveness pings on the victim's own connection.
        ping_latencies = []
        for _ in range(30):
            started = time.monotonic()
            assert victim._call("ping")["pong"] is True
            ping_latencies.append(time.monotonic() - started)
            time.sleep(0.01)

        # And one real submission: fair-share must dequeue it promptly
        # even with hundreds of flooder jobs ahead in arrival order.
        job = victim.submit_Job("victim-wf")
        done = victim.wait_For_Job(job["jobId"], timeout=30)
        assert done["state"] == "SUCCEEDED"
        assert done["queueSeconds"] < 5.0

        pump.join(timeout=60)
        assert not pump.is_alive()
        assert not flood_errors, f"flood failed: {flood_errors[0]}"
        ping_latencies.sort()
        p95 = ping_latencies[int(0.95 * len(ping_latencies))]
        assert p95 < 0.5, f"victim ping p95 {p95:.3f}s under flood"
    finally:
        flooder.close()
        victim.close()
