"""Fault-injection stress tests for the TCP client–server path.

Every test here reproduces a failure mode the transport must survive:
handler exceptions, mid-frame disconnects, byte-dribble partial writes,
silent (black-holed) servers and connection loss between exchanges.
"""

import threading
import time

import pytest

from repro.laminar.client.client import ClientError, LaminarClient
from repro.laminar.server.app import LaminarServer
from repro.laminar.transport import (
    FrameProtocolError,
    FrameType,
    HeartbeatTimeout,
    RetryPolicy,
    TcpClientTransport,
    TcpServerTransport,
)
from repro.laminar.transport.inprocess import ServerStream
from tests.stress.chaos import ChaosProxy

WF = """
class Counter(ProducerPE):
    def _process(self, inputs):
        print("tick")
        return 1

c = Counter("Counter")
graph = WorkflowGraph()
graph.add(c)
"""


class RaisingServer:
    """A server whose handler always explodes — the pre-fix connection killer."""

    def __init__(self, exc: BaseException | None = None) -> None:
        self.exc = exc or RuntimeError("kaboom: injected handler failure")
        self.calls = 0

    def handle(self, payload):
        self.calls += 1
        raise self.exc


class SlowServer:
    """A healthy server that takes a long time to answer."""

    def __init__(self, delay: float) -> None:
        self.delay = delay

    def handle(self, payload):
        time.sleep(self.delay)
        return {"status": 200, "body": {"pong": True}}


class StreamFailingServer:
    """Streams a couple of chunks, then raises mid-body."""

    def handle(self, payload):
        def chunks():
            yield "line-1"
            yield "line-2"
            raise ValueError("stream blew up mid-body")

        return {"status": 200, "body": ServerStream(chunks())}


@pytest.fixture()
def laminar_tcp():
    server = LaminarServer()
    transport = TcpServerTransport(server, heartbeat_interval=0.2).start()
    try:
        yield server, transport
    finally:
        transport.stop()
        server.close()


# -- structured error propagation ---------------------------------------------


def test_handler_exception_reaches_client_as_structured_error():
    """The acceptance-criteria scenario: a raising server action must be
    reported as data, not as ``ConnectionError("server closed mid-exchange")``."""
    backend = RaisingServer()
    transport = TcpServerTransport(backend).start()
    client = TcpClientTransport(*transport.address)
    try:
        response = client.request({"action": "ping"})
        assert response["status"] == 500
        assert response["body"]["error_type"] == "RuntimeError"
        assert "kaboom" in response["body"]["error"]
    finally:
        client.close()
        transport.stop()


def test_connection_survives_handler_exception():
    """One bad exchange must not poison the connection for the next one."""
    backend = RaisingServer()
    transport = TcpServerTransport(backend).start()
    client = TcpClientTransport(*transport.address)
    try:
        for _ in range(3):
            assert client.request({"action": "ping"})["status"] == 500
        assert backend.calls == 3
        assert client.reconnects == 0  # same socket throughout
    finally:
        client.close()
        transport.stop()


def test_stream_exchange_reports_error_frame():
    backend = RaisingServer()
    transport = TcpServerTransport(backend).start()
    client = TcpClientTransport(*transport.address)
    try:
        frames = list(client.stream({"action": "run", "id": "x"}))
        assert frames[-1].type is FrameType.ERROR
        assert frames[-1].payload["error_type"] == "RuntimeError"
    finally:
        client.close()
        transport.stop()


def test_mid_stream_body_failure_becomes_error_frame():
    """An exception raised while the body streams arrives after DATA frames."""
    transport = TcpServerTransport(StreamFailingServer()).start()
    client = TcpClientTransport(*transport.address)
    try:
        frames = list(client.stream({"action": "run"}))
        types = [f.type for f in frames]
        assert FrameType.DATA in types
        assert frames[-1].type is FrameType.ERROR
        assert frames[-1].payload["error_type"] == "ValueError"
        # Unary spelling: the error wins over the partial body.
        response = client.request({"action": "run"})
        assert response["status"] == 500
        assert "mid-body" in response["body"]["error"]
    finally:
        client.close()
        transport.stop()


def test_laminar_client_sees_server_error_as_client_error(laminar_tcp):
    """End to end: a raising action surfaces as ClientError, and the same
    client keeps working afterwards."""
    server, transport = laminar_tcp
    original = server.handle

    def flaky(payload):
        if payload.get("action") == "explode":
            raise ValueError("injected action failure")
        return original(payload)

    server.handle = flaky
    client = LaminarClient.connect(*transport.address)
    try:
        with pytest.raises(ClientError) as excinfo:
            client._call("explode")
        assert excinfo.value.status == 500
        assert "injected action failure" in str(excinfo.value)
        # Connection is still healthy: run a real workflow over it.
        server.registry.register_workflow(server.auth.resolve(None), WF, "wf_ok")
        summary = client.run("wf_ok", input=2)
        assert summary.ok and summary.lines == ["tick", "tick"]
    finally:
        server.handle = original
        client.close()


def test_transport_error_counter_increments(laminar_tcp):
    server, transport = laminar_tcp
    original = server.handle
    server.handle = lambda payload: (_ for _ in ()).throw(RuntimeError("boom"))
    client = TcpClientTransport(*transport.address)
    try:
        assert client.request({"action": "ping"})["status"] == 500
        text = server.obs_registry.render_text()
        assert "laminar_transport_handler_errors_total" in text
        assert 'error_type="RuntimeError"' in text
    finally:
        server.handle = original
        client.close()


# -- chaos proxy: mid-frame disconnects and partial writes --------------------


def test_mid_frame_disconnect_raises_protocol_error(laminar_tcp):
    """A response cut mid-frame must raise loudly, not read as a clean EOF."""
    _server, transport = laminar_tcp
    with ChaosProxy(transport.address, cut_after=10) as proxy:
        client = TcpClientTransport(*proxy.address)
        try:
            with pytest.raises(FrameProtocolError):
                client.request({"action": "ping"})
        finally:
            client.close()


def test_partial_writes_reassemble(laminar_tcp):
    """Byte-dribbled responses (1-byte proxy chunks) still decode cleanly."""
    _server, transport = laminar_tcp
    with ChaosProxy(transport.address, chunk=1, delay=0.0005) as proxy:
        client = TcpClientTransport(*proxy.address)
        try:
            response = client.request({"action": "ping"})
            assert response["status"] == 200
            assert response["body"]["pong"] is True
        finally:
            client.close()


# -- reconnect with backoff ---------------------------------------------------


def test_idempotent_request_reconnects_after_cut(laminar_tcp):
    """First exchange fits under the per-connection byte budget; the second
    is cut mid-frame and must transparently reconnect and resend."""
    _server, transport = laminar_tcp
    # Measure the exact wire size of one ping response (re-encoding a
    # decoded frame is byte-identical), then budget the proxy for one
    # full response plus a few bytes — the second response gets cut.
    probe = TcpClientTransport(*transport.address)
    frames = list(probe.stream({"action": "ping"}))
    ping_bytes = sum(len(f.encode()) for f in frames)
    probe.close()
    with ChaosProxy(transport.address, cut_after=ping_bytes + 8) as proxy:
        client = TcpClientTransport(
            *proxy.address, retry_policy=RetryPolicy(max_retries=3, backoff=0.01)
        )
        try:
            assert client.request({"action": "ping"}, idempotent=True)["status"] == 200
            # Second exchange exceeds this connection's budget → cut →
            # reconnect to the proxy (fresh budget) → success.
            assert client.request({"action": "ping"}, idempotent=True)["status"] == 200
            assert client.reconnects >= 1
            assert client.retries >= 1
            assert proxy.connections >= 2
        finally:
            client.close()


def test_non_idempotent_request_never_resends(laminar_tcp):
    _server, transport = laminar_tcp
    with ChaosProxy(transport.address, cut_after=10) as proxy:
        client = TcpClientTransport(
            *proxy.address, retry_policy=RetryPolicy(max_retries=3, backoff=0.01)
        )
        try:
            with pytest.raises(ConnectionError):
                client.request({"action": "register_pe", "code": "x"})
            assert client.retries == 0
        finally:
            client.close()


def test_retry_budget_is_bounded(laminar_tcp):
    """Every connection gets cut, so retries must exhaust and raise."""
    _server, transport = laminar_tcp
    with ChaosProxy(transport.address, cut_after=6) as proxy:
        client = TcpClientTransport(
            *proxy.address, retry_policy=RetryPolicy(max_retries=2, backoff=0.01)
        )
        try:
            with pytest.raises(ConnectionError):
                client.request({"action": "ping"}, idempotent=True)
            assert client.retries == 2
        finally:
            client.close()


# -- heartbeats and liveness --------------------------------------------------


def test_heartbeats_keep_slow_exchange_alive():
    """A handler slower than the idle deadline survives because PINGs flow."""
    transport = TcpServerTransport(SlowServer(1.1), heartbeat_interval=0.15).start()
    client = TcpClientTransport(*transport.address, idle_deadline=0.5)
    try:
        response = client.request({"action": "ping"})
        assert response["status"] == 200
        assert response["body"]["pong"] is True
    finally:
        client.close()
        transport.stop()


def test_idle_deadline_detects_dead_server(laminar_tcp):
    """A black-holed server trips the idle deadline promptly instead of
    hanging until the 30s socket timeout."""
    _server, transport = laminar_tcp
    with ChaosProxy(transport.address, blackhole=True) as proxy:
        client = TcpClientTransport(*proxy.address, idle_deadline=0.4)
        try:
            started = time.monotonic()
            with pytest.raises(HeartbeatTimeout):
                client.request({"action": "ping"})
            assert time.monotonic() - started < 3.0
        finally:
            client.close()


def test_client_ping_detects_dead_server(laminar_tcp):
    _server, transport = laminar_tcp
    with ChaosProxy(transport.address, blackhole=True) as proxy:
        client = TcpClientTransport(*proxy.address)
        try:
            with pytest.raises(HeartbeatTimeout):
                client.ping(timeout=0.4)
        finally:
            client.close()


@pytest.mark.slow
def test_chaos_soak_mixed_faults(laminar_tcp):
    """Many sequential exchanges through a byte-dribbling proxy while a
    concurrent client hammers the direct path — nothing wedges or leaks."""
    server, transport = laminar_tcp
    errors: list[str] = []

    def direct_worker():
        c = TcpClientTransport(*transport.address)
        try:
            for _ in range(25):
                if c.request({"action": "ping"})["status"] != 200:
                    errors.append("direct status")
        except Exception as exc:  # noqa: BLE001
            errors.append(f"direct: {exc}")
        finally:
            c.close()

    thread = threading.Thread(target=direct_worker)
    thread.start()
    with ChaosProxy(transport.address, chunk=7, delay=0.0002) as proxy:
        client = TcpClientTransport(*proxy.address)
        try:
            for _ in range(25):
                assert client.request({"action": "ping"})["status"] == 200
        finally:
            client.close()
    thread.join(timeout=30.0)
    assert not thread.is_alive()
    assert errors == []
