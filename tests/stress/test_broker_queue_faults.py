"""Stress and regression tests for the broker and job-queue primitives.

Covers the wake-up and accounting bugs that only surface under
concurrency: ``RedisSim.delete`` losing ``wait_for_zero`` waiters,
``JobQueue.discard`` corrupting depth accounting for terminal jobs, the
dynamic autoscaler writing ``target_workers`` outside ``workers_lock``,
plus interleaving soaks driven by :class:`FaultyRedisSim`.
"""

import threading
import time

import pytest

from repro.d4py.core import ProducerPE
from repro.d4py.mappings.dynamic import _DynamicEngine, run_dynamic
from repro.d4py.redisim import RedisSim
from repro.d4py.workflow import WorkflowGraph
from repro.laminar.jobs.model import Job, JobSpec, JobState
from repro.laminar.jobs.queue import JobQueue
from tests.stress.chaos import FaultyRedisSim


def _job(job_id: int, priority: int = 0) -> Job:
    return Job(job_id, JobSpec(workflow_code="pass", priority=priority))


# -- RedisSim.delete() must wake wait_for_zero() waiters ----------------------


def test_delete_wakes_wait_for_zero_promptly():
    """Regression: a waiter parked on a counter that gets deleted must wake
    immediately (deleted key reads as 0), not sleep out its full timeout."""
    sim = RedisSim()
    sim.incr("pending", 2)
    results: list[bool] = []
    waiter = threading.Thread(
        target=lambda: results.append(sim.wait_for_zero("pending", timeout=10.0)),
        daemon=True,
    )
    waiter.start()
    time.sleep(0.1)  # let the waiter park
    started = time.monotonic()
    assert sim.delete("pending") == 1
    waiter.join(timeout=2.0)
    assert not waiter.is_alive(), "wait_for_zero slept through the delete"
    assert results == [True]
    assert time.monotonic() - started < 1.0


def test_flushall_wakes_wait_for_zero():
    sim = RedisSim()
    sim.incr("pending")
    results: list[bool] = []
    waiter = threading.Thread(
        target=lambda: results.append(sim.wait_for_zero("pending", timeout=10.0)),
        daemon=True,
    )
    waiter.start()
    time.sleep(0.05)
    sim.flushall()
    waiter.join(timeout=2.0)
    assert not waiter.is_alive()
    assert results == [True]


def test_brpop_wakes_after_flushall_then_push():
    """A brpop blocked across a flushall must still claim the next push."""
    sim = RedisSim()
    got: list = []
    consumer = threading.Thread(
        target=lambda: got.append(sim.brpop("q", timeout=5.0)), daemon=True
    )
    consumer.start()
    time.sleep(0.05)
    sim.flushall()  # wakes the consumer; list still empty, so it re-parks
    time.sleep(0.05)
    sim.rpush("q", "item")
    consumer.join(timeout=2.0)
    assert not consumer.is_alive()
    assert got == ["item"]


def test_brpop_wakes_after_delete_then_push():
    sim = RedisSim()
    sim.rpush("q", "stale")
    assert sim.brpop("q") == "stale"
    got: list = []
    consumer = threading.Thread(
        target=lambda: got.append(sim.brpop("q", timeout=5.0)), daemon=True
    )
    consumer.start()
    time.sleep(0.05)
    sim.delete("q")  # deleting the empty key must not strand the waiter
    time.sleep(0.05)
    sim.rpush("q", "fresh")
    consumer.join(timeout=2.0)
    assert not consumer.is_alive()
    assert got == ["fresh"]


# -- FaultyRedisSim: the harness itself ---------------------------------------


def test_dropped_notify_delays_wake_until_timeout_recheck():
    """With the wake-up swallowed, the waiter only notices the counter hit
    zero at its timeout re-check — exactly the bug class the delete fix
    removes.  Documents why every mutation must notify."""
    sim = FaultyRedisSim()
    sim.incr("pending")
    sim.drop_next_notifies(1)
    started = time.monotonic()
    results: list[bool] = []
    waiter = threading.Thread(
        target=lambda: results.append(sim.wait_for_zero("pending", timeout=0.6)),
        daemon=True,
    )
    waiter.start()
    time.sleep(0.05)
    sim.decr("pending")  # this wake-up is dropped
    waiter.join(timeout=3.0)
    elapsed = time.monotonic() - started
    assert results == [True]
    assert sim.dropped_notifies == 1
    assert elapsed >= 0.5, "waiter woke early despite the dropped notify?"


def test_dynamic_run_completes_on_slow_faulty_broker():
    """Injected broker latency slows the run but must not wedge it."""

    class Ticker(ProducerPE):
        def _process(self, inputs):
            self.write("output", 1)

    graph = WorkflowGraph()
    graph.add(Ticker("Ticker"))
    sim = FaultyRedisSim(op_delay=0.002)
    result = run_dynamic(graph, input=5, broker=sim, max_workers=3, drain_timeout=30.0)
    assert result.iterations["Ticker0"] == 5


# -- JobQueue.discard() terminal-state accounting -----------------------------


def test_discard_rejects_terminal_job_and_keeps_depth_honest():
    """Regression: discarding a job that already reached a terminal state
    must fail; accepting it marked the heap entry cancelled and made
    ``depth`` under-count, silently widening admission past capacity."""
    q = JobQueue(capacity=4)
    job = _job(1)
    q.put(job)
    # The cancel-vs-finish race: the job's terminal transition lands
    # while its entry is still sitting in the heap.
    job.transition(JobState.RUNNING)
    job.transition(JobState.FAILED)
    assert q.discard(job.job_id) is False
    assert q.depth == 1, "terminal discard corrupted the depth accounting"


def test_discard_still_works_for_queued_jobs():
    q = JobQueue(capacity=4)
    job = _job(1)
    q.put(job)
    assert q.discard(job.job_id) is True
    assert q.depth == 0
    assert q.discard(job.job_id) is False  # already marked
    assert q.get(timeout=0.05) is None  # lazily dropped, not delivered


def test_discard_rejects_cancelled_terminal_job():
    """Cancellation must discard *before* the terminal transition — once
    CANCELLED has landed the queue no longer accepts the discard."""
    q = JobQueue(capacity=4)
    job = _job(1)
    q.put(job)
    job.transition(JobState.CANCELLED)
    assert q.discard(job.job_id) is False
    assert q.depth == 1


# -- JobQueue interleavings ---------------------------------------------------


def test_concurrent_put_get_discard_accounting():
    """Producers, consumers and a canceller race; every job must be
    delivered exactly once or discarded exactly once, and the final
    accounting must balance."""
    q = JobQueue(capacity=10_000)
    jobs = [_job(i, priority=i % 3) for i in range(300)]
    delivered: list[int] = []
    delivered_lock = threading.Lock()
    discarded: set[int] = set()
    discard_lock = threading.Lock()
    start = threading.Barrier(7)

    def producer(chunk):
        start.wait()
        for job in chunk:
            q.put(job)

    def consumer():
        start.wait()
        while True:
            job = q.get(timeout=0.2)
            if job is None:
                return
            with delivered_lock:
                delivered.append(job.job_id)

    def canceller(ids):
        start.wait()
        for job_id in ids:
            if q.discard(job_id):
                with discard_lock:
                    discarded.add(job_id)

    threads = (
        [threading.Thread(target=producer, args=(jobs[i::3],)) for i in range(3)]
        + [threading.Thread(target=consumer) for _ in range(3)]
        + [threading.Thread(target=canceller, args=([j.job_id for j in jobs[::2]],))]
    )
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30.0)
        assert not t.is_alive()

    assert len(delivered) == len(set(delivered)), "a job was delivered twice"
    assert not discarded & set(delivered), "a job was both discarded and delivered"
    assert len(delivered) + len(discarded) == len(jobs)
    assert q.depth == 0
    stats = q.stats()
    assert stats["depth"] == 0
    assert stats["submitted"] == len(jobs)


@pytest.mark.slow
def test_concurrent_queue_soak_many_rounds():
    """Repeat the interleaving many times to shake out rare schedules."""
    for round_no in range(10):
        q = JobQueue(capacity=1000)
        jobs = [_job(i) for i in range(60)]
        seen: list[int] = []
        lock = threading.Lock()

        def consumer():
            while True:
                job = q.get(timeout=0.1)
                if job is None:
                    return
                with lock:
                    seen.append(job.job_id)

        consumers = [threading.Thread(target=consumer) for _ in range(4)]
        for t in consumers:
            t.start()
        kept = [j for j in jobs if j.job_id % 3]
        for j in jobs:
            q.put(j)
        dropped = {j.job_id for j in jobs if not j.job_id % 3 and q.discard(j.job_id)}
        for t in consumers:
            t.join(timeout=15.0)
            assert not t.is_alive()
        assert len(seen) == len(set(seen))
        assert len(seen) + len(dropped) == len(jobs)
        assert set(seen) | dropped == {j.job_id for j in jobs}
        del kept


# -- dynamic autoscaler lock discipline ---------------------------------------


class TrackingLock:
    """Context-manager lock that records which thread currently holds it."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.owner: threading.Thread | None = None

    def __enter__(self) -> "TrackingLock":
        self._lock.acquire()
        self.owner = threading.current_thread()
        return self

    def __exit__(self, *exc) -> bool:
        self.owner = None
        self._lock.release()
        return False


def _tiny_graph() -> WorkflowGraph:
    class Tick(ProducerPE):
        def _process(self, inputs):
            self.write("output", 1)

    graph = WorkflowGraph()
    graph.add(Tick("Tick"))
    return graph


def test_autoscaler_writes_target_workers_under_workers_lock():
    """Regression for the autoscaler data race: every write to
    ``target_workers`` must happen while ``workers_lock`` is held, because
    ``_worker_loop`` reads it under that lock for scale-down decisions."""
    engine = _DynamicEngine(
        _tiny_graph(), RedisSim(), instances_per_pe=1,
        min_workers=1, max_workers=4, autoscale=True,
    )
    tracking = TrackingLock()
    engine.workers_lock = tracking
    violations: list[int] = []

    class Probed(_DynamicEngine):
        @property
        def target_workers(self):
            return self.__dict__["_target_workers"]

        @target_workers.setter
        def target_workers(self, value):
            if tracking.owner is not threading.current_thread():
                violations.append(value)
            self.__dict__["_target_workers"] = value

    engine.__dict__["_target_workers"] = engine.__dict__.pop("target_workers")
    engine.__class__ = Probed

    def fake_spawn():
        with engine.workers_lock:
            engine.workers.append(threading.Thread(target=lambda: None))

    engine._spawn_worker = fake_spawn

    # Deep queue → exercises the scale-up write; then drained queue with a
    # grown pool → exercises the scale-down write.
    for i in range(12):
        engine.broker.rpush(engine.ns + "tasks", i)
    scaler = threading.Thread(target=engine._autoscaler_loop, daemon=True)
    scaler.start()
    time.sleep(0.2)
    engine.broker.delete(engine.ns + "tasks")
    time.sleep(0.2)
    engine.stop_event.set()
    scaler.join(timeout=2.0)
    assert not scaler.is_alive()
    assert len(engine.workers) > 1, "scale-up path never ran"
    assert engine.target_workers < len(engine.workers) or engine.target_workers == 1, (
        "scale-down path never ran"
    )
    assert violations == [], (
        f"target_workers written {len(violations)}x without holding workers_lock"
    )


def test_autoscaled_dynamic_run_converges():
    """Functional sanity on the fixed autoscaler: a bursty run scales up,
    drains, and joins every worker without deadlock."""
    graph = _tiny_graph()
    result = run_dynamic(
        graph, input=40, min_workers=1, max_workers=6, autoscale=True,
        drain_timeout=30.0,
    )
    assert result.iterations["Tick0"] == 40
