"""Tests for Aroma feature extraction (repro.aroma.features)."""

from repro.aroma.features import VAR, extract_features, feature_set
from repro.aroma.spt import python_to_spt


def feats(source):
    return extract_features(python_to_spt(source))


def test_token_features_present():
    f = feats("random.randint(1, 1000)")
    assert f["random"] >= 1
    assert f["randint"] >= 1


def test_variables_abstracted_in_features():
    f = feats("x = compute(1)\nuse(x)")
    assert f[VAR] >= 2
    assert "x" not in f


def test_parent_features_encode_position():
    f = feats("if flag:\n    pass")
    parent_feats = [k for k in f if k.startswith("flag>")]
    assert parent_feats, "expected parent features for the if-condition token"
    assert any("if#:" in k for k in parent_feats)


def test_sibling_features_encode_order():
    f = feats("foo(bar)")
    assert f["foo~bar"] >= 1


def test_variable_usage_features():
    src = "total = 0\nfor v in vs:\n    total += v"
    f = feats(src)
    usage = [k for k in f if "-->" in k]
    assert usage, "expected variable-usage features for `total`"


def test_renaming_variables_preserves_features():
    """The heart of Aroma: local names must not change the feature set."""
    a = feature_set(python_to_spt("def f(x):\n    y = x + 1\n    return y"))
    b = feature_set(python_to_spt("def f(a):\n    b = a + 1\n    return b"))
    # function name identical, variables abstracted -> identical sets
    assert a == b


def test_renaming_free_functions_changes_features():
    a = feature_set(python_to_spt("parse(data)"))
    b = feature_set(python_to_spt("render(data)"))
    assert a != b


def test_structural_change_changes_features():
    a = feature_set(python_to_spt("if x:\n    foo()"))
    b = feature_set(python_to_spt("while x:\n    foo()"))
    assert a != b


def test_feature_multiplicity_counted():
    f = feats("foo()\nfoo()\nfoo()")
    assert f["foo"] == 3


def test_feature_set_ignores_multiplicity():
    fs = feature_set(python_to_spt("foo()\nfoo()"))
    assert "foo" in fs


def test_empty_module():
    f = feats("")
    assert isinstance(sum(f.values()), int)


def test_partial_snippet_shares_features_with_full():
    full = """
class IsPrime(IterativePE):
    def _process(self, num):
        if all(num % i != 0 for i in range(2, num)):
            return num
"""
    partial = "\n".join(full.strip().splitlines()[:3])
    shared = feature_set(python_to_spt(full)) & feature_set(python_to_spt(partial))
    # Structural features of the class/def header survive truncation.
    assert len(shared) >= 5
