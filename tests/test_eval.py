"""Tests for evaluation metrics, the dropper and the experiment harness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import (
    PRCurve,
    drop_suffix,
    f1_score,
    precision_recall_at_k,
    run_code_to_code_eval,
    run_description_eval,
    run_text_to_code_eval,
    token_f1,
)
from repro.eval.dropper import DROP_LEVELS
from repro.eval.metrics import average_pr_curve


# -- precision / recall -----------------------------------------------------


def test_precision_recall_basics():
    ranked = ["a", "b", "c", "d"]
    relevant = {"a", "c"}
    assert precision_recall_at_k(ranked, relevant, 1) == (1.0, 0.5)
    assert precision_recall_at_k(ranked, relevant, 2) == (0.5, 0.5)
    assert precision_recall_at_k(ranked, relevant, 4) == (0.5, 1.0)


def test_precision_recall_empty_relevant():
    assert precision_recall_at_k(["a"], set(), 1) == (0.0, 0.0)


def test_precision_recall_invalid_k():
    with pytest.raises(ValueError):
        precision_recall_at_k(["a"], {"a"}, 0)


def test_f1_score():
    assert f1_score(1.0, 1.0) == 1.0
    assert f1_score(0.0, 0.0) == 0.0
    assert f1_score(0.5, 1.0) == pytest.approx(2 / 3)


@given(p=st.floats(0, 1), r=st.floats(0, 1))
def test_f1_bounded_by_min_and_max(p, r):
    f1 = f1_score(p, r)
    assert 0.0 <= f1 <= 1.0
    assert f1 <= max(p, r) + 1e-12
    if p > 0 and r > 0:
        assert f1 >= min(p, r) * 0.999 or f1 <= max(p, r)


def test_average_pr_curve():
    rankings = [
        (["a", "b"], {"a"}),
        (["x", "y"], {"y"}),
    ]
    curve = average_pr_curve(rankings, max_k=2)
    assert curve.ks == [1, 2]
    assert curve.precision[0] == 0.5  # one hit@1 of two queries
    assert curve.recall[1] == 1.0


def test_average_pr_curve_skips_empty_relevant():
    curve = average_pr_curve([(["a"], set()), (["a"], {"a"})], max_k=1)
    assert curve.precision[0] == 1.0


def test_average_pr_curve_no_queries():
    curve = average_pr_curve([], max_k=3)
    assert curve.precision == [0.0, 0.0, 0.0]


def test_prcurve_best_f1_and_rows():
    curve = PRCurve(ks=[1, 2], precision=[1.0, 0.5], recall=[0.5, 1.0])
    assert curve.best_f1() == pytest.approx(2 / 3)
    assert curve.best_k() in (1, 2)
    rows = curve.rows()
    assert rows[0][0] == 1 and len(rows[0]) == 4


def test_prcurve_empty():
    assert PRCurve().best_f1() == 0.0
    assert PRCurve().best_k() == 0


# -- token F1 ------------------------------------------------------------------


def test_token_f1_identical():
    assert token_f1("checks prime numbers", "checks prime numbers") == 1.0


def test_token_f1_disjoint():
    assert token_f1("completely different words", "prime numbers") == 0.0


def test_token_f1_handles_inflection():
    assert token_f1("detects anomalies", "anomaly detection") > 0.4


def test_token_f1_empty():
    assert token_f1("", "reference") == 0.0


# -- dropper --------------------------------------------------------------------


def test_drop_zero_is_identity():
    src = "a\nb\nc"
    assert drop_suffix(src, 0.0) == src


def test_drop_half():
    src = "\n".join(f"line{i}" for i in range(10))
    kept = drop_suffix(src, 0.5).splitlines()
    assert len(kept) == 5
    assert kept[0] == "line0"


def test_drop_always_keeps_one_line():
    assert drop_suffix("only_line", 0.9) == "only_line"


def test_drop_ignores_blank_lines():
    src = "a\n\n\nb\nc"
    assert drop_suffix(src, 0.5).splitlines() == ["a", "b"]


def test_drop_validates_fraction():
    with pytest.raises(ValueError):
        drop_suffix("x", 1.0)
    with pytest.raises(ValueError):
        drop_suffix("x", -0.1)


@given(frac=st.floats(0.01, 0.99), n=st.integers(1, 50))
def test_drop_monotone(frac, n):
    src = "\n".join(f"l{i}" for i in range(n))
    kept = drop_suffix(src, frac).splitlines()
    assert 1 <= len(kept) <= n


def test_paper_drop_levels():
    assert DROP_LEVELS == (0.0, 0.5, 0.75, 0.9)


# -- experiment harness (small corpora for speed) ----------------------------------


def test_text_to_code_eval_runs():
    res = run_text_to_code_eval(corpus_size=40)
    assert res.n_corpus == 40
    assert 0.0 < res.best_f1 <= 1.0
    assert len(res.curve.ks) == 20


def test_text_to_code_is_effective():
    """Sanity floor: semantic search must beat random by a wide margin."""
    res = run_text_to_code_eval(corpus_size=60)
    assert res.best_f1 > 0.4


def test_code_to_code_eval_aroma_beats_reacc():
    """The paper's central claim (Figs 12 vs 13).

    Needs ≥5 members per family for a stable margin — at ~2 members the
    relevant sets are too small to separate the models reliably.
    """
    from repro.datasets import generate_corpus

    corpus = generate_corpus(240)
    aroma = run_code_to_code_eval("aroma", corpus=corpus, drops=(0.0, 0.5), max_queries=60)
    reacc = run_code_to_code_eval("reacc", corpus=corpus, drops=(0.0, 0.5), max_queries=60)
    assert aroma.best_f1() > reacc.best_f1()
    # robustness on partial snippets: Aroma's 50%-drop F1 beats ReACC's
    assert aroma.curves[0.5].best_f1() > reacc.curves[0.5].best_f1()


def test_code_to_code_eval_degrades_with_drop():
    res = run_code_to_code_eval(
        "aroma", corpus_size=80, drops=(0.0, 0.9), max_queries=40
    )
    assert res.curves[0.0].best_f1() >= res.curves[0.9].best_f1()


def test_code_to_code_rejects_unknown_model():
    with pytest.raises(ValueError, match="unknown model"):
        run_code_to_code_eval("gpt")


def test_description_eval_full_class_wins():
    """The paper's Fig 10 claim."""
    scores = run_description_eval(corpus_size=40)
    assert scores["full_class"] > scores["process_only"]
