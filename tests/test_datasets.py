"""Tests for the synthetic CodeSearchNet-PE corpus generator."""

import ast

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import (
    FAMILIES,
    function_to_pe,
    generate_corpus,
    render_variant,
)
from repro.datasets.codesearchnet import family_of
from repro.datasets.peconvert import pe_class_name


def test_every_template_variant_parses():
    for family in FAMILIES:
        for v in range(len(family.variants)):
            for seed in range(3):
                _, src = render_variant(family, v, seed)
                ast.parse(src)  # raises on failure


def test_render_is_deterministic():
    fam = FAMILIES[0]
    assert render_variant(fam, 0, 5) == render_variant(fam, 0, 5)


def test_render_seeds_change_identifiers():
    fam = FAMILIES[0]
    _, a = render_variant(fam, 0, 0)
    _, b = render_variant(fam, 0, 1)
    assert a != b


def test_render_same_variant_same_structure():
    """Renamed renders of one variant have identical SPT feature sets."""
    from repro.aroma import extract_features, python_to_spt

    fam = FAMILIES[0]
    _, a = render_variant(fam, 0, 0)
    _, b = render_variant(fam, 0, 2)

    def structural(src):
        # keep only variable-abstracted structural features (ignore the
        # concrete function-name token features, which legitimately differ)
        names = set()
        for f in (a, b):
            tree = ast.parse(f)
            for node in ast.walk(tree):
                if isinstance(node, ast.FunctionDef):
                    names.add(node.name)
        return {
            feat
            for feat in extract_features(python_to_spt(src))
            if not any(n in feat for n in names)
        }

    assert structural(a) == structural(b)


def test_families_have_multiple_variants():
    assert all(len(f.variants) >= 2 for f in FAMILIES)
    assert len(FAMILIES) >= 30


def test_pe_class_name():
    assert pe_class_name("moving_average") == "MovingAveragePE"
    assert pe_class_name("gcd", "0003") == "GcdPE_0003"


def test_function_to_pe_single_arg():
    name, src = function_to_pe("def double(x):\n    return x * 2\n")
    assert name == "DoublePE"
    ast.parse(src)
    assert "def _process(self, data):" in src
    assert "return double(data)" in src


def test_function_to_pe_multi_arg_uses_tuple():
    _, src = function_to_pe("def add(a, b):\n    return a + b\n")
    assert "return add(*data)" in src


def test_function_to_pe_defaulted_args_not_unpacked():
    _, src = function_to_pe("def clip(x, lo=0):\n    return max(x, lo)\n")
    assert "return clip(data)" in src


def test_function_to_pe_keeps_description():
    _, src = function_to_pe("def f(x):\n    return x\n", description="My PE.")
    assert '"""My PE."""' in src


def test_function_to_pe_rejects_non_function():
    with pytest.raises(ValueError, match="function"):
        function_to_pe("x = 1\n")


def test_function_to_pe_logic_before_init():
    """The function logic must precede __init__ so prefix truncation
    keeps the distinguishing code (Figs 12/13 protocol)."""
    _, src = function_to_pe("def f(x):\n    return x\n")
    assert src.index("_process") < src.index("__init__")


def test_generated_pe_is_runnable():
    """The PE class actually executes under the d4py engine."""
    from repro.d4py import IterativePE, run_graph
    from repro.d4py.core import pes_from_iterable
    from tests.helpers import pipeline

    _, src = function_to_pe("def double(x):\n    return x * 2\n")
    namespace = {"IterativePE": IterativePE}
    exec(src, namespace)
    pe = namespace["DoublePE"]()
    graph = pipeline(pes_from_iterable([1, 2, 3], name="src"), pe)
    result = run_graph(graph, input=3)
    assert result.output_for(pe.name) == [2, 4, 6]


def test_corpus_size_and_uniqueness():
    corpus = generate_corpus(100)
    assert len(corpus) == 100
    assert len({c.uid for c in corpus}) == 100
    assert len({c.pe_name for c in corpus}) == 100


def test_corpus_all_pe_sources_parse():
    for item in generate_corpus(80):
        ast.parse(item.pe_source)


def test_corpus_min_per_family():
    corpus = generate_corpus(60, min_per_family=2)
    groups = family_of(corpus)
    assert all(len(members) >= 2 for members in groups.values())


def test_corpus_small_n_limits_families():
    corpus = generate_corpus(4)
    assert len(family_of(corpus)) <= 2


def test_corpus_rejects_zero():
    with pytest.raises(ValueError):
        generate_corpus(0)


def test_corpus_deterministic():
    a = generate_corpus(30)
    b = generate_corpus(30)
    assert a == b


def test_corpus_prefix_property():
    """A prefix of a bigger corpus equals the smaller one (same family
    count — below 2x families the generator narrows the family set)."""
    n = 2 * len(FAMILIES)
    small, big = generate_corpus(n), generate_corpus(2 * n)
    assert big[:n] == small


@settings(max_examples=10, deadline=None)
@given(n=st.integers(1, 60))
def test_corpus_any_size(n):
    corpus = generate_corpus(n)
    assert len(corpus) == n


# -- corpus JSONL serialisation -------------------------------------------------


def test_corpus_jsonl_roundtrip(tmp_path):
    from repro.datasets.io import dump_jsonl, load_jsonl

    corpus = generate_corpus(30)
    path = tmp_path / "corpus.jsonl"
    assert dump_jsonl(corpus, path) == 30
    loaded = load_jsonl(path)
    assert loaded == corpus


def test_corpus_jsonl_rejects_bad_json(tmp_path):
    from repro.datasets.io import load_jsonl

    path = tmp_path / "bad.jsonl"
    path.write_text("not json\n")
    with pytest.raises(ValueError, match="invalid JSON"):
        load_jsonl(path)


def test_corpus_jsonl_rejects_missing_fields(tmp_path):
    from repro.datasets.io import load_jsonl

    path = tmp_path / "short.jsonl"
    path.write_text('{"uid": "x"}\n')
    with pytest.raises(ValueError, match="missing fields"):
        load_jsonl(path)


def test_corpus_jsonl_rejects_unknown_fields(tmp_path):
    import dataclasses
    import json as _json

    from repro.datasets.io import dump_jsonl, load_jsonl

    corpus = generate_corpus(1)
    payload = dataclasses.asdict(corpus[0])
    payload["surprise"] = True
    path = tmp_path / "extra.jsonl"
    path.write_text(_json.dumps(payload) + "\n")
    with pytest.raises(ValueError, match="unknown fields"):
        load_jsonl(path)


def test_corpus_jsonl_skips_blank_lines(tmp_path):
    import dataclasses
    import json as _json

    from repro.datasets.io import load_jsonl

    corpus = generate_corpus(2)
    path = tmp_path / "gaps.jsonl"
    path.write_text(
        _json.dumps(dataclasses.asdict(corpus[0]))
        + "\n\n"
        + _json.dumps(dataclasses.asdict(corpus[1]))
        + "\n"
    )
    assert load_jsonl(path) == corpus
