"""Tests for workflow visualisation (DOT and text renderings)."""

from repro.d4py import WorkflowGraph
from repro.d4py.visualise import to_dot, to_text

from tests.helpers import Collect, Double, KeyedCount, RangeProducer, pipeline


def sample_graph():
    return pipeline(RangeProducer("src"), Double("dbl"), Collect("sink"))


def test_dot_contains_all_nodes():
    dot = to_dot(sample_graph())
    for name in ("src", "dbl", "sink"):
        assert f'"{name}"' in dot


def test_dot_contains_edges_with_ports():
    dot = to_dot(sample_graph())
    assert '"src" -> "dbl"' in dot
    assert "output->input" in dot


def test_dot_is_valid_digraph():
    dot = to_dot(sample_graph(), name="wf")
    assert dot.startswith("digraph wf {")
    assert dot.rstrip().endswith("}")
    assert dot.count("{") == dot.count("}")


def test_dot_marks_group_by():
    g = WorkflowGraph()
    src, count = RangeProducer("src"), KeyedCount("count")
    g.connect(src, "output", count, "input")
    dot = to_dot(g)
    assert "group_by[0]" in dot


def test_text_topological_order():
    text = to_text(sample_graph())
    assert text.index("src") < text.index("dbl") < text.index("sink")


def test_text_marks_roots_and_workflow_outputs():
    text = to_text(sample_graph())
    assert "◆ src" in text  # root marker
    assert "(workflow output)" not in text.split("dbl")[0]  # dbl has a successor


def test_text_leaf_port_labelled():
    g = pipeline(RangeProducer("src"), Double("dbl"))
    text = to_text(g)
    assert "(workflow output)" in text


def test_text_shows_grouping():
    g = WorkflowGraph()
    src, count = RangeProducer("src"), KeyedCount("count")
    g.connect(src, "output", count, "input")
    assert "group_by[0]" in to_text(g)
