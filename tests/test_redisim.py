"""Tests for the simulated Redis broker (repro.d4py.redisim)."""

import threading
import time

from hypothesis import given, strategies as st

from repro.d4py.redisim import RedisSim, default_broker


def test_push_pop_fifo_semantics():
    r = RedisSim()
    r.rpush("q", 1, 2, 3)
    assert r.brpop("q", timeout=0.1) == 3  # tail pop
    assert r.lpop("q") == 1
    assert r.rpop("q") == 2
    assert r.rpop("q") is None


def test_lpush_prepends():
    r = RedisSim()
    r.lpush("q", "a", "b")
    assert r.lpop("q") == "b"
    assert r.lpop("q") == "a"


def test_llen():
    r = RedisSim()
    assert r.llen("q") == 0
    r.rpush("q", 1, 2)
    assert r.llen("q") == 2


def test_brpop_times_out_on_empty():
    r = RedisSim()
    start = time.monotonic()
    assert r.brpop("empty", timeout=0.05) is None
    assert time.monotonic() - start >= 0.04


def test_brpop_wakes_on_push():
    r = RedisSim()
    got = []

    def consumer():
        got.append(r.brpop("q", timeout=2.0))

    t = threading.Thread(target=consumer)
    t.start()
    time.sleep(0.02)
    r.rpush("q", "item")
    t.join(timeout=2.0)
    assert got == ["item"]


def test_blpop_head_pop_is_fifo_with_rpush():
    """rpush + blpop is the FIFO pairing the dynamic task queue relies on."""
    r = RedisSim()
    r.rpush("q", "a", "b", "c")
    assert [r.blpop("q", timeout=0.1) for _ in range(3)] == ["a", "b", "c"]


def test_blpop_times_out_on_empty():
    r = RedisSim()
    start = time.monotonic()
    assert r.blpop("empty", timeout=0.05) is None
    assert time.monotonic() - start >= 0.04


def test_blpop_wakes_on_push():
    r = RedisSim()
    got = []

    def consumer():
        got.append(r.blpop("q", timeout=2.0))

    t = threading.Thread(target=consumer)
    t.start()
    time.sleep(0.02)
    r.rpush("q", "item")
    t.join(timeout=2.0)
    assert got == ["item"]


def test_drained_lists_do_not_leak_keys():
    """Fully popped lists disappear from the key table (defaultdict ghosts)."""
    r = RedisSim()
    for i in range(10):
        key = f"run{i}:tasks"
        r.rpush(key, 1, 2, 3)
        assert r.blpop(key, timeout=0.1) == 1
        assert r.rpop(key) == 3
        assert r.lpop(key) == 2
    assert r.stats()["lists"] == 0
    assert r.stats()["queued_items"] == 0


def test_delete_prefix_spans_namespaces():
    r = RedisSim()
    r.set("run1:pending", 3)
    r.rpush("run1:tasks", "x")
    r.hset("run1:meta", "f", 1)
    r.set("keep", 1)
    assert r.delete_prefix("run1:") == 3
    assert r.get("run1:pending") is None
    assert r.llen("run1:tasks") == 0
    assert r.hgetall("run1:meta") == {}
    assert r.get("keep") == 1
    assert r.delete_prefix("run1:") == 0


def test_delete_prefix_wakes_wait_for_zero():
    """Dropping a counter key reads as zero, so waiters must re-check."""
    r = RedisSim()
    r.incr("run2:pending", 5)

    def cleaner():
        time.sleep(0.02)
        r.delete_prefix("run2:")

    t = threading.Thread(target=cleaner)
    t.start()
    assert r.wait_for_zero("run2:pending", timeout=2.0) is True
    t.join()


def test_hash_operations():
    r = RedisSim()
    r.hset("h", "f", 1)
    assert r.hget("h", "f") == 1
    assert r.hget("h", "missing") is None
    assert r.hgetall("h") == {"f": 1}


def test_hsetnx_only_sets_once():
    r = RedisSim()
    assert r.hsetnx("h", "f", "first") is True
    assert r.hsetnx("h", "f", "second") is False
    assert r.hget("h", "f") == "first"


def test_incr_decr():
    r = RedisSim()
    assert r.incr("c") == 1
    assert r.incr("c", 5) == 6
    assert r.decr("c") == 5


def test_get_set_delete():
    r = RedisSim()
    r.set("k", "v")
    assert r.get("k") == "v"
    assert r.delete("k") == 1
    assert r.get("k") is None
    assert r.delete("k") == 0


def test_delete_spans_namespaces():
    r = RedisSim()
    r.set("x", 1)
    r.rpush("y", 1)
    r.hset("z", "f", 1)
    assert r.delete("x", "y", "z") == 3


def test_wait_for_zero_immediate():
    r = RedisSim()
    assert r.wait_for_zero("absent", timeout=0.1) is True


def test_wait_for_zero_times_out():
    r = RedisSim()
    r.incr("busy")
    assert r.wait_for_zero("busy", timeout=0.05) is False


def test_wait_for_zero_wakes_on_decr():
    r = RedisSim()
    r.incr("busy")

    def finisher():
        time.sleep(0.02)
        r.decr("busy")

    t = threading.Thread(target=finisher)
    t.start()
    assert r.wait_for_zero("busy", timeout=2.0) is True
    t.join()


def test_flushall():
    r = RedisSim()
    r.set("k", 1)
    r.rpush("q", 1)
    r.flushall()
    assert r.get("k") is None
    assert r.llen("q") == 0


def test_default_broker_is_singleton():
    assert default_broker() is default_broker()


def test_concurrent_incr_is_atomic():
    r = RedisSim()

    def bump():
        for _ in range(1000):
            r.incr("n")

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert r.get("n") == 8000


def test_concurrent_producers_consumers_conserve_items():
    r = RedisSim()
    produced = 500
    consumed = []
    lock = threading.Lock()

    def producer(base):
        for i in range(100):
            r.rpush("jobs", base + i)

    def consumer():
        while True:
            item = r.brpop("jobs", timeout=0.2)
            if item is None:
                return
            with lock:
                consumed.append(item)

    producers = [threading.Thread(target=producer, args=(i * 100,)) for i in range(5)]
    consumers = [threading.Thread(target=consumer) for _ in range(4)]
    for t in producers + consumers:
        t.start()
    for t in producers + consumers:
        t.join()
    assert sorted(consumed) == list(range(produced))


@given(st.lists(st.integers(), max_size=50))
def test_list_roundtrip_preserves_items(items):
    r = RedisSim()
    if items:
        r.rpush("q", *items)
    popped = [r.lpop("q") for _ in items]
    assert popped == items


@given(st.lists(st.integers(min_value=-100, max_value=100), max_size=50))
def test_incr_sums_deltas(deltas):
    r = RedisSim()
    for d in deltas:
        r.incr("k", d)
    assert int(r.get("k") or 0) == sum(deltas)


def test_blocked_brpop_consumers_with_interleaved_lpush():
    """Consumers parked in brpop on one key; interleaved lpush wakes them.

    Every pushed value must be delivered exactly once (no loss, no
    double-delivery) even though all consumers block on the same key
    while producers interleave their pushes.
    """
    r = RedisSim()
    n_consumers, per_producer, n_producers = 8, 40, 4
    total = per_producer * n_producers
    consumed: list = []
    lock = threading.Lock()
    started = threading.Barrier(n_consumers + n_producers + 1)

    def consumer():
        started.wait()
        while True:
            item = r.brpop("k", timeout=1.0)
            if item == "stop":
                r.lpush("k", "stop")  # pass the poison pill along
                return
            assert item is not None, "brpop timed out with items still due"
            with lock:
                consumed.append(item)

    def producer(base):
        started.wait()
        for i in range(per_producer):
            r.lpush("k", base + i)
            if i % 7 == 0:
                time.sleep(0.001)  # force interleaving across producers

    consumers = [threading.Thread(target=consumer) for _ in range(n_consumers)]
    producers = [
        threading.Thread(target=producer, args=(j * per_producer,))
        for j in range(n_producers)
    ]
    for t in consumers + producers:
        t.start()
    started.wait()  # all threads racing from the same instant
    for t in producers:
        t.join()
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        with lock:
            if len(consumed) == total:
                break
        time.sleep(0.005)
    r.lpush("k", "stop")
    for t in consumers:
        t.join(timeout=5.0)
    assert len(consumed) == total, "lost or stuck deliveries"
    assert sorted(consumed) == list(range(total)), "double or phantom delivery"


def test_blocked_brpop_timeouts_fire_under_contention():
    """With fewer items than blocked consumers, the rest time out cleanly."""
    r = RedisSim()
    results: list = []
    lock = threading.Lock()

    def consumer():
        item = r.brpop("scarce", timeout=0.15)
        with lock:
            results.append(item)

    threads = [threading.Thread(target=consumer) for _ in range(6)]
    for t in threads:
        t.start()
    time.sleep(0.03)  # let every consumer block first
    r.lpush("scarce", "a", "b")
    start = time.monotonic()
    for t in threads:
        t.join(timeout=5.0)
    elapsed = time.monotonic() - start
    winners = [x for x in results if x is not None]
    assert sorted(winners) == ["a", "b"]  # each item delivered exactly once
    assert results.count(None) == 4  # the rest timed out
    assert elapsed < 2.0  # timeouts fired promptly, nobody wedged
