"""Tests for the simulated Redis broker (repro.d4py.redisim)."""

import threading
import time

from hypothesis import given, strategies as st

from repro.d4py.redisim import RedisSim, default_broker


def test_push_pop_fifo_semantics():
    r = RedisSim()
    r.rpush("q", 1, 2, 3)
    assert r.brpop("q", timeout=0.1) == 3  # tail pop
    assert r.lpop("q") == 1
    assert r.rpop("q") == 2
    assert r.rpop("q") is None


def test_lpush_prepends():
    r = RedisSim()
    r.lpush("q", "a", "b")
    assert r.lpop("q") == "b"
    assert r.lpop("q") == "a"


def test_llen():
    r = RedisSim()
    assert r.llen("q") == 0
    r.rpush("q", 1, 2)
    assert r.llen("q") == 2


def test_brpop_times_out_on_empty():
    r = RedisSim()
    start = time.monotonic()
    assert r.brpop("empty", timeout=0.05) is None
    assert time.monotonic() - start >= 0.04


def test_brpop_wakes_on_push():
    r = RedisSim()
    got = []

    def consumer():
        got.append(r.brpop("q", timeout=2.0))

    t = threading.Thread(target=consumer)
    t.start()
    time.sleep(0.02)
    r.rpush("q", "item")
    t.join(timeout=2.0)
    assert got == ["item"]


def test_hash_operations():
    r = RedisSim()
    r.hset("h", "f", 1)
    assert r.hget("h", "f") == 1
    assert r.hget("h", "missing") is None
    assert r.hgetall("h") == {"f": 1}


def test_hsetnx_only_sets_once():
    r = RedisSim()
    assert r.hsetnx("h", "f", "first") is True
    assert r.hsetnx("h", "f", "second") is False
    assert r.hget("h", "f") == "first"


def test_incr_decr():
    r = RedisSim()
    assert r.incr("c") == 1
    assert r.incr("c", 5) == 6
    assert r.decr("c") == 5


def test_get_set_delete():
    r = RedisSim()
    r.set("k", "v")
    assert r.get("k") == "v"
    assert r.delete("k") == 1
    assert r.get("k") is None
    assert r.delete("k") == 0


def test_delete_spans_namespaces():
    r = RedisSim()
    r.set("x", 1)
    r.rpush("y", 1)
    r.hset("z", "f", 1)
    assert r.delete("x", "y", "z") == 3


def test_wait_for_zero_immediate():
    r = RedisSim()
    assert r.wait_for_zero("absent", timeout=0.1) is True


def test_wait_for_zero_times_out():
    r = RedisSim()
    r.incr("busy")
    assert r.wait_for_zero("busy", timeout=0.05) is False


def test_wait_for_zero_wakes_on_decr():
    r = RedisSim()
    r.incr("busy")

    def finisher():
        time.sleep(0.02)
        r.decr("busy")

    t = threading.Thread(target=finisher)
    t.start()
    assert r.wait_for_zero("busy", timeout=2.0) is True
    t.join()


def test_flushall():
    r = RedisSim()
    r.set("k", 1)
    r.rpush("q", 1)
    r.flushall()
    assert r.get("k") is None
    assert r.llen("q") == 0


def test_default_broker_is_singleton():
    assert default_broker() is default_broker()


def test_concurrent_incr_is_atomic():
    r = RedisSim()

    def bump():
        for _ in range(1000):
            r.incr("n")

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert r.get("n") == 8000


def test_concurrent_producers_consumers_conserve_items():
    r = RedisSim()
    produced = 500
    consumed = []
    lock = threading.Lock()

    def producer(base):
        for i in range(100):
            r.rpush("jobs", base + i)

    def consumer():
        while True:
            item = r.brpop("jobs", timeout=0.2)
            if item is None:
                return
            with lock:
                consumed.append(item)

    producers = [threading.Thread(target=producer, args=(i * 100,)) for i in range(5)]
    consumers = [threading.Thread(target=consumer) for _ in range(4)]
    for t in producers + consumers:
        t.start()
    for t in producers + consumers:
        t.join()
    assert sorted(consumed) == list(range(produced))


@given(st.lists(st.integers(), max_size=50))
def test_list_roundtrip_preserves_items(items):
    r = RedisSim()
    if items:
        r.rpush("q", *items)
    popped = [r.lpop("q") for _ in items]
    assert popped == items


@given(st.lists(st.integers(min_value=-100, max_value=100), max_size=50))
def test_incr_sums_deltas(deltas):
    r = RedisSim()
    for d in deltas:
        r.incr("k", d)
    assert int(r.get("k") or 0) == sum(deltas)
