"""Unit tests for the server model records (repro.laminar.server.models)."""

import json

from repro.laminar.server.models import (
    ExecutionRecord,
    PERecord,
    ResponseRecord,
    UserRecord,
    WorkflowRecord,
)


def test_user_public_hides_password():
    user = UserRecord(userId=1, userName="alice", passwordHash="salt:deadbeef")
    public = user.to_public()
    assert public == {"userId": 1, "userName": "alice"}
    assert "passwordHash" not in public


def make_pe(**overrides):
    defaults = dict(
        peId=7,
        userId=1,
        peName="IsPrime",
        peCode="class IsPrime(IterativePE): pass",
        description="checks primes",
        descEmbedding=json.dumps([0.1, -0.2]),
        sptEmbedding=json.dumps({"f": 2, "g": 1}),
    )
    defaults.update(overrides)
    return PERecord(**defaults)


def test_pe_vector_and_features_parse_json():
    pe = make_pe()
    assert pe.desc_vector() == [0.1, -0.2]
    assert pe.spt_features() == {"f": 2, "g": 1}


def test_pe_empty_embeddings():
    pe = make_pe(descEmbedding="", sptEmbedding="")
    assert pe.desc_vector() == []
    assert pe.spt_features() == {}


def test_pe_public_with_and_without_code():
    pe = make_pe()
    with_code = pe.to_public(include_code=True)
    without = pe.to_public(include_code=False)
    assert "peCode" in with_code
    assert "peCode" not in without
    assert without["peName"] == "IsPrime"
    # embeddings never leak into public payloads
    assert "descEmbedding" not in with_code
    assert "sptEmbedding" not in with_code


def test_workflow_public_shapes():
    wf = WorkflowRecord(
        workflowId=3,
        userId=1,
        workflowName="wf",
        workflowCode="graph = WorkflowGraph()",
        descEmbedding=json.dumps([1.0]),
        sptEmbedding=json.dumps({"x": 1}),
    )
    assert wf.desc_vector() == [1.0]
    assert wf.spt_features() == {"x": 1}
    assert "workflowCode" not in wf.to_public(include_code=False)
    assert wf.to_public()["workflowName"] == "wf"


def test_execution_public_is_full_record():
    record = ExecutionRecord(
        executionId=1, workflowId=2, userId=3, mapping="multi", status="success"
    )
    public = record.to_public()
    assert public["mapping"] == "multi"
    assert public["status"] == "success"


def test_response_public_roundtrip():
    record = ResponseRecord(responseId=1, executionId=2, output="{}", logLines="a\nb")
    assert record.to_public()["logLines"] == "a\nb"
