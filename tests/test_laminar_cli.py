"""Tests for the Laminar CLI (paper Fig 5 flows)."""

import io

import pytest

from repro.laminar import LaminarClient
from repro.laminar.client.cli import LaminarCLI

ISPRIME_WF = '''
import random

class NumberProducer(ProducerPE):
    def _process(self, inputs):
        return random.randint(1, 1000)

class IsPrime(IterativePE):
    """Checks whether a given number is prime and returns the number."""
    def _process(self, num):
        if num > 1 and all(num % i != 0 for i in range(2, num)):
            return num

class PrintPrime(ConsumerPE):
    def _process(self, num):
        print(f"the num {num} is prime")

producer = NumberProducer("NumberProducer")
isprime = IsPrime("IsPrime")
printer = PrintPrime("PrintPrime")
graph = WorkflowGraph()
graph.connect(producer, "output", isprime, "input")
graph.connect(isprime, "output", printer, "input")
'''

#: Documented commands from the paper's CLI help screen (Fig 5a).
PAPER_COMMANDS = [
    "code_recommendation",
    "describe",
    "help",
    "list",
    "literal_search",
    "quit",
    "register_pe",
    "register_workflow",
    "remove_all",
    "remove_pe",
    "remove_workflow",
    "run",
    "semantic_search",
    "update_pe_description",
    "update_workflow_description",
]


@pytest.fixture()
def cli(tmp_path):
    wf_file = tmp_path / "isprime_wf.py"
    wf_file.write_text(ISPRIME_WF)
    out = io.StringIO()
    shell = LaminarCLI(LaminarClient(), stdout=out)
    return shell, out, wf_file


def run_cmd(shell, out, line):
    out.truncate(0)
    out.seek(0)
    shell.onecmd(line)
    return out.getvalue()


def test_all_paper_commands_exist(cli):
    shell, _, _ = cli
    for command in PAPER_COMMANDS:
        if command in ("help", "quit"):
            continue
        assert hasattr(shell, f"do_{command}"), f"missing CLI command {command}"
    assert hasattr(shell, "do_quit")


def test_register_workflow_output_matches_fig5a(cli):
    shell, out, wf_file = cli
    text = run_cmd(shell, out, f"register_workflow {wf_file}")
    assert "Found PEs" in text
    assert "• IsPrime - type" in text
    assert "• NumberProducer - type" in text
    assert "Found workflows" in text
    assert "• isprime_wf - Workflow" in text


def test_register_pe(cli, tmp_path):
    shell, out, _ = cli
    pe_file = tmp_path / "pe.py"
    pe_file.write_text(
        "class Doubler(IterativePE):\n    def _process(self, x):\n        return x * 2\n"
    )
    text = run_cmd(shell, out, f"register_pe {pe_file}")
    assert "Doubler" in text


def test_list(cli):
    shell, out, wf_file = cli
    run_cmd(shell, out, f"register_workflow {wf_file}")
    text = run_cmd(shell, out, "list")
    assert "IsPrime" in text and "isprime_wf" in text


def test_run_with_multi_verbose_like_fig5b(cli):
    shell, out, wf_file = cli
    run_cmd(shell, out, f"register_workflow {wf_file}")
    wf_id = shell.client.get_Workflow("isprime_wf")["workflowId"]
    text = run_cmd(shell, out, f"run {wf_id} -i 10 --multi -v")
    assert "Processed" in text  # the Fig 5b iteration lines
    assert "NumberProducer" in text


def test_run_sequential_streams_output(cli):
    shell, out, wf_file = cli
    run_cmd(shell, out, f"register_workflow {wf_file}")
    text = run_cmd(shell, out, "run isprime_wf -i 30")
    assert "is prime" in text


def test_run_dynamic(cli):
    shell, out, wf_file = cli
    run_cmd(shell, out, f"register_workflow {wf_file}")
    text = run_cmd(shell, out, "run isprime_wf -i 5 --dynamic")
    # dynamic run completes without error output
    assert "error" not in text.lower() or "is prime" in text


def test_literal_search(cli):
    shell, out, wf_file = cli
    run_cmd(shell, out, f"register_workflow {wf_file}")
    text = run_cmd(shell, out, "literal_search prime")
    assert "IsPrime" in text


def test_semantic_search_fig8(cli):
    shell, out, wf_file = cli
    run_cmd(shell, out, f"register_workflow {wf_file}")
    text = run_cmd(shell, out, 'semantic_search pe "checks if a number is prime"')
    assert "cosine_similarity" in text
    assert "IsPrime" in text


def test_code_recommendation_fig9(cli):
    shell, out, wf_file = cli
    run_cmd(shell, out, f"register_workflow {wf_file}")
    text = run_cmd(shell, out, 'code_recommendation pe "random.randint(1, 1000)"')
    assert "NumberProducer" in text
    wf_text = run_cmd(
        shell, out, 'code_recommendation workflow "random.randint(1, 1000)"'
    )
    assert "isprime_wf" in wf_text


def test_code_recommendation_llm_flag(cli):
    shell, out, wf_file = cli
    run_cmd(shell, out, f"register_workflow {wf_file}")
    text = run_cmd(
        shell,
        out,
        'code_recommendation pe "class IsPrime(IterativePE): pass" --embedding_type llm',
    )
    assert "error" not in text.lower()


def test_describe(cli):
    shell, out, wf_file = cli
    run_cmd(shell, out, f"register_workflow {wf_file}")
    text = run_cmd(shell, out, "describe pe IsPrime")
    assert "class IsPrime" in text


def test_update_descriptions(cli):
    shell, out, wf_file = cli
    run_cmd(shell, out, f"register_workflow {wf_file}")
    text = run_cmd(shell, out, "update_pe_description IsPrime checks primality quickly")
    assert "checks primality quickly" in text
    text = run_cmd(
        shell, out, "update_workflow_description isprime_wf a prime pipeline"
    )
    assert "a prime pipeline" in text


def test_remove_commands(cli):
    shell, out, wf_file = cli
    run_cmd(shell, out, f"register_workflow {wf_file}")
    text = run_cmd(shell, out, "remove_pe PrintPrime")
    assert "removed PE PrintPrime" in text
    text = run_cmd(shell, out, "remove_workflow isprime_wf")
    assert "removed workflow isprime_wf" in text
    text = run_cmd(shell, out, "remove_all")
    assert "removed" in text


def test_errors_are_reported_not_raised(cli):
    shell, out, _ = cli
    text = run_cmd(shell, out, "describe pe NoSuchPE")
    assert "error" in text.lower()
    text = run_cmd(shell, out, "register_pe /no/such/file.py")
    assert "error" in text.lower()


def test_quit_returns_true(cli):
    shell, _, _ = cli
    assert shell.do_quit("") is True


def test_usage_hints(cli):
    shell, out, _ = cli
    assert "usage" in run_cmd(shell, out, "register_pe")
    assert "usage" in run_cmd(shell, out, "semantic_search")
    assert "usage" in run_cmd(shell, out, "update_pe_description onlyid")


def test_show_renders_graph(cli):
    shell, out, wf_file = cli
    run_cmd(shell, out, f"register_workflow {wf_file}")
    text = run_cmd(shell, out, "show isprime_wf")
    assert "NumberProducer" in text and "IsPrime" in text
    assert "PEs" in text


def test_show_usage(cli):
    shell, out, _ = cli
    assert "usage" in run_cmd(shell, out, "show")


def test_cli_main_connect_over_tcp():
    """The `laminar --connect host:port` entry point end to end."""
    import subprocess
    import sys

    from repro.laminar.server.app import LaminarServer
    from repro.laminar.transport.tcp import TcpServerTransport

    server = LaminarServer()
    server.registry.register_pe(
        server.auth.resolve(None),
        "class Remote(IterativePE):\n    def _process(self, x):\n        return x\n",
    )
    transport = TcpServerTransport(server).start()
    host, port = transport.address
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.laminar.client.cli", "--connect", f"{host}:{port}"],
            input="list\nquit\n",
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr[-500:]
        assert "Remote" in proc.stdout
    finally:
        transport.stop()


def test_cli_stats(cli):
    shell, out, wf_file = cli
    run_cmd(shell, out, f"register_workflow {wf_file}")
    text = run_cmd(shell, out, "stats")
    assert "register_workflow" in text
    assert "uptime" in text


def test_cli_export_import_roundtrip(cli, tmp_path):
    shell, out, wf_file = cli
    run_cmd(shell, out, f"register_workflow {wf_file}")
    dump_file = tmp_path / "registry.json"
    text = run_cmd(shell, out, f"export {dump_file}")
    assert "exported 3 PEs and 1 workflows" in text

    fresh = LaminarCLI(LaminarClient(), stdout=out)
    text = run_cmd(fresh, out, f"import {dump_file}")
    assert "imported 3 PEs and 1 workflows" in text
    text = run_cmd(fresh, out, "list")
    assert "isprime_wf" in text


def test_cli_export_usage(cli):
    shell, out, _ = cli
    assert "usage" in run_cmd(shell, out, "export")
    assert "usage" in run_cmd(shell, out, "import")


def test_cli_main_embedded_server():
    """`laminar` with no flags embeds a server and serves a session."""
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro.laminar.client.cli"],
        input="list\nquit\n",
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr[-500:]
    assert "Welcome to the Laminar CLI" in proc.stdout
    assert "Processing elements:" in proc.stdout


def test_cli_code_completion(cli):
    shell, out, wf_file = cli
    run_cmd(shell, out, f"register_workflow {wf_file}")
    text = run_cmd(
        shell, out, 'code_completion "class IsPrime(IterativePE):"'
    )
    assert "from IsPrime" in text
    assert "return num" in text


def test_cli_code_completion_usage(cli):
    shell, out, _ = cli
    assert "usage" in run_cmd(shell, out, "code_completion")
