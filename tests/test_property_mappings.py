"""Property-based tests: all mappings agree with the sequential semantics.

The crucial invariant of the engine (and of dispel4py itself): the
*observable results* of a workflow are mapping-independent — sequential,
multiprocessing and dynamic enactment produce the same leaf outputs (as
multisets; ordering may differ) and the same per-PE item counts.
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.d4py import (
    GenericPE,
    IterativePE,
    ProducerPE,
    WorkflowGraph,
    run_graph,
)


class Emit(ProducerPE):
    """Deterministic producer: i -> base + i."""

    def __init__(self, name=None, base=0):
        super().__init__(name)
        self.base = base
        self._i = 0

    def _process(self, inputs):
        value = self.base + self._i
        self._i += 1
        return value


class Affine(IterativePE):
    def __init__(self, name=None, mul=1, add=0):
        super().__init__(name)
        self.mul, self.add = mul, add

    def _process(self, x):
        return x * self.mul + self.add


class ModFilter(IterativePE):
    def __init__(self, name=None, mod=2):
        super().__init__(name)
        self.mod = mod

    def _process(self, x):
        return x if x % self.mod == 0 else None


class FanOut(IterativePE):
    """Emits x and x+1000 — multiple writes per input."""

    def _process(self, x):
        self.write(self.OUTPUT_NAME, x)
        self.write(self.OUTPUT_NAME, x + 1000)


class KeyedSum(GenericPE):
    """Stateful: emits (key, running_sum) for items grouped by key."""

    def __init__(self, name=None, mod=3):
        super().__init__(name)
        self._add_input("input", grouping=[0])
        self._add_output("output")
        self.mod = mod
        self.sums = {}

    def _process(self, inputs):
        key, value = inputs["input"]
        self.sums[key] = self.sums.get(key, 0) + value
        return {"output": (key, self.sums[key])}


STAGES = {
    "affine": lambda i: Affine(f"affine{i}", mul=2, add=1),
    "filter": lambda i: ModFilter(f"filter{i}", mod=2),
    "fanout": lambda i: FanOut(f"fanout{i}"),
}


def build_pipeline(stage_keys):
    graph = WorkflowGraph()
    nodes = [Emit("emit")]
    for i, key in enumerate(stage_keys):
        nodes.append(STAGES[key](i))
    if len(nodes) == 1:
        graph.add(nodes[0])
    for up, down in zip(nodes, nodes[1:]):
        graph.connect(up, "output", down, "input")
    return graph, nodes[-1].name


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    stages=st.lists(st.sampled_from(sorted(STAGES)), max_size=3),
    n=st.integers(1, 12),
)
def test_dynamic_matches_simple_on_random_pipelines(stages, n):
    g1, leaf = build_pipeline(stages)
    g2, _ = build_pipeline(stages)
    simple = run_graph(g1, input=n, mapping="simple")
    dynamic = run_graph(g2, input=n, mapping="dynamic", max_workers=3)
    assert Counter(simple.output_for(leaf)) == Counter(dynamic.output_for(leaf))


@pytest.mark.parametrize("stages", [[], ["affine"], ["fanout", "filter"], ["affine", "fanout"]])
def test_multi_matches_simple_on_pipelines(stages):
    g1, leaf = build_pipeline(stages)
    g2, _ = build_pipeline(stages)
    simple = run_graph(g1, input=15, mapping="simple")
    multi = run_graph(g2, input=15, mapping="multi", num_processes=5)
    assert Counter(simple.output_for(leaf)) == Counter(multi.output_for(leaf))


@pytest.mark.parametrize("mapping,options", [
    ("multi", {"num_processes": 7}),
    ("dynamic", {"max_workers": 4, "instances_per_pe": 5}),
])
def test_keyed_state_invariant_across_mappings(mapping, options):
    """Final per-key sums must equal the sequential ground truth even when
    state is spread over many instances (group_by correctness)."""

    class Pair(IterativePE):
        def _process(self, x):
            return (x % 3, x)

    def build():
        g = WorkflowGraph()
        emit, pair, ksum = Emit("emit"), Pair("pair"), KeyedSum("ksum")
        g.connect(emit, "output", pair, "input")
        g.connect(pair, "output", ksum, "input")
        return g

    def finals(result):
        best = {}
        for key, total in result.output_for("ksum"):
            best[key] = max(best.get(key, 0), total)
        return best

    expected = finals(run_graph(build(), input=30, mapping="simple"))
    actual = finals(run_graph(build(), input=30, mapping=mapping, **options))
    assert actual == expected


@pytest.mark.parametrize(
    "options",
    [
        {"batch_max_items": 16, "fuse": False},
        {"batch_max_items": "adaptive", "fuse": True},
    ],
    ids=["batched", "batched_fused"],
)
def test_batched_grouped_pipeline_matches_per_item(options):
    """Micro-batching and fusion are pure transport optimisations.

    On a grouped 3-stage workflow (emit -> key -> keyed count) a batched
    (or batched+fused) enactment must be indistinguishable from per-item
    dispatch: identical leaf output multiset, identical per-PE totals,
    and — because group_by routing is value-deterministic — identical
    per-instance iteration counts for the grouped stage.  Batches crossing
    the grouped edge must therefore be split per destination instance
    before enqueueing, never delivered wholesale to one instance.
    """
    from tests.helpers import KeyedCount

    class Key(IterativePE):
        def _process(self, x):
            return (x % 5, x)

    def build():
        g = WorkflowGraph()
        emit, key, count = Emit("emit"), Key("key"), KeyedCount("count")
        g.connect(emit, "output", key, "input")
        g.connect(key, "output", count, "input")
        return g

    def run(**opts):
        return run_graph(
            build(),
            input=40,
            mapping="dynamic",
            max_workers=3,
            instances_per_pe=4,
            **opts,
        )

    def pe_totals(result, prefix):
        return sum(v for k, v in result.iterations.items() if k.startswith(prefix))

    def grouped_per_instance(result):
        return {k: v for k, v in result.iterations.items() if k.startswith("count")}

    per_item = run(batch_max_items=1, fuse=False)
    other = run(**options)
    assert Counter(per_item.output_for("count")) == Counter(other.output_for("count"))
    for prefix in ("emit", "key", "count"):
        assert pe_totals(per_item, prefix) == pe_totals(other, prefix) == 40
    assert grouped_per_instance(per_item) == grouped_per_instance(other)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(0, 25), mod=st.integers(1, 5))
def test_filter_count_invariant(n, mod):
    """#outputs == #inputs passing the predicate, for any mapping inputs."""
    g = WorkflowGraph()
    emit = Emit("emit")
    filt = ModFilter("filt", mod=mod)
    g.connect(emit, "output", filt, "input")
    result = run_graph(g, input=n, mapping="simple")
    expected = sum(1 for i in range(n) if i % mod == 0)
    assert len(result.output_for("filt")) == expected
