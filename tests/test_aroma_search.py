"""Tests for the Aroma index, pruning, clustering, recommender and LSH."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aroma import (
    AromaIndex,
    AromaRecommender,
    LaminarSPTSearch,
    MinHashLSHIndex,
    extract_features,
    python_to_spt,
)
from repro.aroma.cluster import cluster_candidates, jaccard
from repro.aroma.features import feature_set
from repro.aroma.prune import prune_spt, rerank_score
from repro.aroma.recommend import embedding_to_counter, spt_embedding

CORPUS = {
    "producer": """
class NumberProducer(ProducerPE):
    def _process(self, inputs):
        return random.randint(1, 1000)
""",
    "isprime": """
class IsPrime(IterativePE):
    def _process(self, num):
        if all(num % i != 0 for i in range(2, num)):
            return num
""",
    "printer": """
class PrintPrime(ConsumerPE):
    def _process(self, num):
        print(f"the num {num} is prime")
""",
    "anomaly": """
class AnomalyDetector(IterativePE):
    def _process(self, record):
        if abs(record["temp"] - self.mean) > self.threshold:
            return record
""",
    "wordsplit": """
class WordSplit(IterativePE):
    def _process(self, line):
        for word in line.split():
            self.write("output", (word, 1))
""",
}


@pytest.fixture(scope="module")
def index():
    idx = AromaIndex()
    for sid, src in CORPUS.items():
        idx.add(sid, src, metadata={"name": sid})
    idx.build()
    return idx


def test_index_len(index):
    assert len(index) == len(CORPUS)


def test_overlap_search_finds_fig9_query(index):
    """The paper's Fig 9: 'random.randint(1, 1000)' -> NumberProducer."""
    hits = index.search("random.randint(1, 1000)", top_n=1)
    assert hits[0].snippet_id == "producer"
    assert hits[0].score >= 6.0  # clears Laminar's default threshold


def test_exact_snippet_is_top_hit(index):
    for sid, src in CORPUS.items():
        hits = index.search(src, top_n=1)
        assert hits[0].snippet_id == sid, f"self-retrieval failed for {sid}"


def test_partial_snippet_still_retrieves(index):
    partial = "\n".join(CORPUS["isprime"].strip().splitlines()[:3])
    hits = index.search(partial, top_n=2)
    assert hits[0].snippet_id == "isprime"


def test_min_score_filters(index):
    hits = index.search("nonexistent_identifier_xyz", top_n=5, min_score=1.0)
    assert all(h.score >= 1.0 for h in hits)


def test_cosine_mode_bounded(index):
    scores = index.scores(CORPUS["isprime"], mode="cosine")
    assert scores.max() <= 1.0 + 1e-9
    assert scores.max() == pytest.approx(1.0)


def test_containment_mode(index):
    scores = index.scores("random.randint(1, 1000)", mode="containment")
    assert 0.0 <= scores.max() <= 1.0


def test_unknown_mode_rejected(index):
    with pytest.raises(ValueError, match="score mode"):
        index.scores("x", mode="bogus")


def test_empty_index_build_rejected():
    with pytest.raises(ValueError, match="empty"):
        AromaIndex().build()


def test_unparseable_query_scores_zero(index):
    assert index.scores("£$%^&*").max() == 0.0


# -- pruning ---------------------------------------------------------------


def test_prune_drops_unrelated_subtrees():
    src = """
def f(x):
    y = x + 1
    send_email(admin, report)
    return y
"""
    spt = python_to_spt(src)
    query = extract_features(python_to_spt("def f(x):\n    y = x + 1\n    return y"))
    pruned = prune_spt(spt, query)
    rendered = pruned.render()
    assert "email" not in rendered
    assert "return" in rendered


def test_prune_keeps_matching_structure():
    spt = python_to_spt(CORPUS["isprime"])
    query = extract_features(spt)
    pruned = prune_spt(spt, query)
    assert rerank_score(pruned, query) == pytest.approx(1.0, abs=0.05)


def test_rerank_score_zero_for_disjoint():
    spt = python_to_spt("foo()")
    query = extract_features(python_to_spt("bar()"))
    pruned = prune_spt(spt, query)
    assert rerank_score(pruned, query) < 0.5


# -- clustering ----------------------------------------------------------------


def test_jaccard_basics():
    assert jaccard(frozenset("ab"), frozenset("ab")) == 1.0
    assert jaccard(frozenset("a"), frozenset("b")) == 0.0
    assert jaccard(frozenset(), frozenset()) == 0.0


def test_cluster_groups_near_duplicates():
    items = ["aaa", "aab", "zzz"]
    fsets = {"aaa": frozenset("ab"), "aab": frozenset("ab"), "zzz": frozenset("z")}
    clusters = cluster_candidates(items, features_of=lambda x: fsets[x], tau=0.5)
    assert len(clusters) == 2
    assert clusters[0].members == ["aaa", "aab"]


def test_cluster_common_is_intersection():
    fsets = {"a": frozenset({"x", "y"}), "b": frozenset({"x", "z", "y"})}
    clusters = cluster_candidates(["a", "b"], features_of=lambda k: fsets[k], tau=0.5)
    assert clusters[0].common == frozenset({"x", "y"})


# -- recommender ------------------------------------------------------------------


@pytest.fixture(scope="module")
def recommender():
    return AromaRecommender().fit(
        [(sid, src, {"name": sid}) for sid, src in CORPUS.items()]
    )


def test_recommend_returns_relevant_first(recommender):
    recs = recommender.recommend("random.randint(1, 1000)")
    assert recs[0].snippet_id == "producer"
    assert recs[0].pruned_code


def test_recommend_clusters_duplicates():
    dup_corpus = [("a", CORPUS["isprime"]), ("b", CORPUS["isprime"]), ("c", CORPUS["anomaly"])]
    rec = AromaRecommender().fit(dup_corpus)
    recs = rec.recommend(CORPUS["isprime"], top_n=5)
    top = recs[0]
    assert top.cluster_size == 2
    assert set(top.cluster_member_ids) == {"a", "b"}


def test_recommend_empty_for_garbage(recommender):
    assert recommender.recommend("£$%^&*") == []


def test_recommend_respects_top_n(recommender):
    assert len(recommender.recommend("def f(x):\n    return x", top_n=2)) <= 2


# -- Laminar simplified variant ------------------------------------------------------


def test_laminar_search_threshold():
    ls = LaminarSPTSearch()
    for sid, src in CORPUS.items():
        ls.add(sid, src)
    ls.build()
    hits = ls.search("random.randint(1, 1000)")
    assert [h.snippet_id for h in hits] == ["producer"]
    assert all(h.score >= 6.0 for h in hits)


def test_laminar_search_override_threshold():
    ls = LaminarSPTSearch()
    for sid, src in CORPUS.items():
        ls.add(sid, src)
    ls.build()
    hits = ls.search("random.randint(1, 1000)", threshold=1.0, top_k=5)
    assert len(hits) > 1


def test_spt_embedding_roundtrip():
    emb = spt_embedding(CORPUS["isprime"])
    assert isinstance(emb, dict) and emb
    counter = embedding_to_counter(emb)
    assert counter == extract_features(python_to_spt(CORPUS["isprime"]))


def test_embedding_to_counter_accepts_json_string():
    import json

    emb = spt_embedding("x = 1")
    assert embedding_to_counter(json.dumps(emb)) == embedding_to_counter(emb)


# -- LSH ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def lsh():
    idx = MinHashLSHIndex()
    for sid, src in CORPUS.items():
        idx.add(sid, feature_set(python_to_spt(src)))
    return idx


def test_lsh_self_query_returns_self(lsh):
    for sid, src in CORPUS.items():
        results = lsh.query(feature_set(python_to_spt(src)), top_n=1)
        assert results and results[0][0] == sid


def test_lsh_candidates_subset_of_corpus(lsh):
    cands = lsh.candidates(feature_set(python_to_spt(CORPUS["isprime"])))
    assert cands <= set(CORPUS)


def test_lsh_estimated_jaccard_close_to_exact(lsh):
    a = feature_set(python_to_spt(CORPUS["isprime"]))
    b = feature_set(python_to_spt(CORPUS["anomaly"]))
    exact = len(a & b) / len(a | b)
    est = lsh.estimated_jaccard("isprime", "anomaly")
    assert abs(est - exact) < 0.35  # 64 permutations -> coarse but sane


def test_lsh_band_row_validation():
    with pytest.raises(ValueError, match="bands"):
        MinHashLSHIndex(num_perm=64, bands=10, rows=4)


def test_lsh_empty_feature_set():
    idx = MinHashLSHIndex()
    idx.add("empty", frozenset())
    assert idx.query(frozenset({"x"}), top_n=1) in ([], [("empty", 0.0)])


@settings(max_examples=20, deadline=None)
@given(
    st.sets(st.text(alphabet="abcdef", min_size=1, max_size=4), min_size=1, max_size=20)
)
def test_lsh_identical_sets_always_collide(features):
    idx = MinHashLSHIndex()
    idx.add("one", features)
    assert "one" in idx.candidates(features)


# -- document-frequency pruning -----------------------------------------------


def test_max_df_validation():
    with pytest.raises(ValueError, match="max_df"):
        AromaIndex(max_df=0.0)
    with pytest.raises(ValueError, match="max_df"):
        AromaIndex(max_df=1.5)


def test_max_df_drops_boilerplate_features():
    idx = AromaIndex(max_df=0.5)
    for sid, src in CORPUS.items():
        idx.add(sid, src, metadata={})
    idx.build()
    # 'IterativePE' appears in 3/5 snippets (> 50% df) -> pruned;
    # a query of pure boilerplate must then score ~nothing.
    scores = idx.scores("class X(IterativePE):\n    pass")
    plain = AromaIndex()
    for sid, src in CORPUS.items():
        plain.add(sid, src)
    plain.build()
    plain_scores = plain.scores("class X(IterativePE):\n    pass")
    assert scores.max() < plain_scores.max()


def test_max_df_keeps_distinctive_retrieval():
    idx = AromaIndex(max_df=0.5)
    for sid, src in CORPUS.items():
        idx.add(sid, src)
    idx.build()
    hits = idx.search("random.randint(1, 1000)", top_n=1)
    assert hits[0].snippet_id == "producer"


def test_max_df_none_is_identity():
    a = AromaIndex()
    b = AromaIndex(max_df=1.0)
    for sid, src in CORPUS.items():
        a.add(sid, src)
        b.add(sid, src)
    a.build()
    b.build()
    import numpy as np

    q = CORPUS["isprime"]
    np.testing.assert_array_equal(a.scores(q), b.scores(q))


# -- rerank score properties -----------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(sorted(CORPUS)), st.sampled_from(sorted(CORPUS)))
def test_rerank_score_bounded(a, b):
    query = extract_features(python_to_spt(CORPUS[a]))
    pruned = prune_spt(python_to_spt(CORPUS[b]), query)
    score = rerank_score(pruned, query)
    assert 0.0 <= score <= 1.0


def test_prune_gamma_monotone():
    """Lower gamma (cheaper unmatched features) keeps at least as much of
    the candidate as higher gamma — the pruning knob is monotone."""
    # the query binds x (def param) so it abstracts to #VAR like the
    # candidate's locals — unbound names stay concrete by design.
    query = extract_features(
        python_to_spt("def f(x):\n    if x:\n        return x")
    )

    def kept(gamma):
        pruned = prune_spt(python_to_spt(CORPUS["isprime"]), query, gamma=gamma)
        return sum(1 for leaf in pruned.leaves() if leaf.token != "...")

    counts = [kept(g) for g in (0.0, 0.25, 1.0, 10.0)]
    assert counts == sorted(counts, reverse=True)
    assert counts[0] > counts[-1]


def test_prune_high_gamma_aggressive():
    spt = python_to_spt(CORPUS["isprime"])
    query = extract_features(python_to_spt("unrelated_name()"))
    pruned = prune_spt(spt, query, gamma=10.0)
    kept = [leaf for leaf in pruned.leaves() if leaf.token != "..."]
    assert len(kept) < sum(1 for _ in spt.leaves())
