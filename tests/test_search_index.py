"""Tests for the scalable vector-index subsystem (repro.search.index).

Covers the exact :class:`VectorIndex` (amortized growth, tombstones,
batched argpartition top-k), the persistence layer (round-trips, memmap
warm loads, loud corruption failures), the two-stage ANN pipeline
(exactness of reranked scores, recall@10), the MinHash LSH re-add and
remove fixes, and the registry-service integration (incremental deltas,
warm restart identical to fresh rebuild, corrupt-index fallback).
"""

import json
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aroma.lsh import MinHashLSHIndex
from repro.laminar.client.client import ClientError, LaminarClient
from repro.laminar.server.app import LaminarServer
from repro.search import SemanticSearch
from repro.search.index import (
    IndexPersistenceError,
    RandomHyperplaneLSH,
    TwoStageIndex,
    VectorIndex,
    load_index,
    manifest_info,
    save_index,
)


def _corpus(n, dim=32, clusters=20, seed=0, spread=0.15):
    """Seeded clustered corpus: ``clusters`` bases, noise-perturbed copies."""
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((clusters, dim))
    reps = -(-n // clusters)
    vecs = np.repeat(base, reps, axis=0)[:n]
    vecs = vecs + spread * rng.standard_normal((n, dim))
    return vecs.astype(np.float32)


def _brute_force_top_k(vectors, query, k):
    vn = vectors / np.maximum(
        np.linalg.norm(vectors, axis=1, keepdims=True), 1e-12
    )
    qn = np.asarray(query, dtype=np.float32)
    qn = qn / max(np.linalg.norm(qn), 1e-12)
    sims = vn.astype(np.float32) @ qn
    return list(np.argsort(-sims, kind="stable")[:k])


# -- VectorIndex -----------------------------------------------------------


def test_vector_index_matches_brute_force():
    vecs = _corpus(200)
    vi = VectorIndex(32)
    vi.add_batch(list(range(200)), vecs)
    q = vecs[5] + 0.01
    assert [i for i, _ in vi.search_vector(q, top_k=10)] == _brute_force_top_k(
        vecs, q, 10
    )


def test_vector_index_batch_matches_single():
    vecs = _corpus(150)
    vi = VectorIndex(32)
    vi.add_batch(list(range(150)), vecs)
    queries = _corpus(5, seed=9)
    batched = vi.search_batch(queries, top_k=7)
    for row, result in zip(queries, batched):
        single = vi.search_vector(row, top_k=7)
        assert [i for i, _ in result] == [i for i, _ in single]
        assert np.allclose(
            [s for _, s in result], [s for _, s in single], atol=1e-5
        )


def test_vector_index_incremental_equals_bulk():
    vecs = _corpus(100)
    one, bulk = VectorIndex(32), VectorIndex(32)
    for i in range(100):
        one.add(i, vecs[i])
    bulk.add_batch(list(range(100)), vecs)
    q = vecs[17]
    assert [i for i, _ in one.search_vector(q, top_k=10)] == [
        i for i, _ in bulk.search_vector(q, top_k=10)
    ]


def test_vector_index_update_in_place():
    vi = VectorIndex(4)
    vi.add("a", [1, 0, 0, 0])
    vi.add("b", [0, 1, 0, 0])
    vi.add("a", [0, 0, 1, 0])  # re-add updates, no new row
    assert len(vi) == 2
    assert vi.search_vector([0, 0, 1, 0], top_k=1)[0][0] == "a"


def test_vector_index_remove_is_tombstone():
    vecs = _corpus(50)
    vi = VectorIndex(32)
    vi.add_batch(list(range(50)), vecs)
    assert vi.remove(3) is True
    assert vi.remove(3) is False
    assert 3 not in vi
    assert len(vi) == 49
    stats = vi.stats()
    assert stats["tombstones"] == 1  # masked, not renumbered
    ids = [i for i, _ in vi.search_vector(vecs[3], top_k=50)]
    assert 3 not in ids and len(ids) == 49


def test_vector_index_compacts_when_mostly_tombstones():
    vecs = _corpus(300)
    vi = VectorIndex(32)
    vi.add_batch(list(range(300)), vecs)
    for i in range(200):
        vi.remove(i)
    stats = vi.stats()
    assert stats["compactions"] >= 1
    assert stats["tombstones"] < 150
    survivors = [i for i, _ in vi.search_vector(vecs[250], top_k=300)]
    assert sorted(survivors) == list(range(200, 300))


def test_vector_index_top_k_larger_than_corpus():
    vi = VectorIndex(8)
    vi.add("x", np.ones(8))
    assert len(vi.search_vector(np.ones(8), top_k=10)) == 1
    assert VectorIndex(8).search_vector(np.ones(8), top_k=3) == []


def test_vector_index_dim_mismatch():
    vi = VectorIndex(8)
    with pytest.raises(ValueError):
        vi.add("x", np.ones(9))
    with pytest.raises(ValueError):
        vi.add_batch(["x"], np.ones((1, 9)))


def test_vector_index_deterministic_tie_break():
    vi = VectorIndex(4)
    for name in ("first", "second", "third"):
        vi.add(name, [1, 0, 0, 0])  # identical vectors: exact ties
    result = [i for i, _ in vi.search_vector([1, 0, 0, 0], top_k=2)]
    assert result == ["first", "second"]  # insertion order wins


# -- amortized add (satellite: the old per-add vstack was O(n²)) -----------


def test_add_is_amortized_geometric_growth():
    vi = VectorIndex(16)
    for i in range(10_000):
        vi.add(i, np.ones(16))
    # Capacity doubling: ~log2(10000/64) ≈ 8 reallocations, not one per
    # add as vstack effectively did.
    assert vi.stats()["reallocations"] <= 10


def test_add_total_time_within_constant_factor_of_bulk():
    vecs = _corpus(10_000, dim=16)
    started = time.perf_counter()
    one = VectorIndex(16)
    for i in range(10_000):
        one.add(i, vecs[i])
    incremental = time.perf_counter() - started
    started = time.perf_counter()
    bulk = VectorIndex(16)
    bulk.add_batch(list(range(10_000)), vecs)
    bulk_time = time.perf_counter() - started
    # The old vstack build was ~n/2 copies ≈ thousands of times slower
    # than bulk at n=10k; amortized growth stays within a small constant
    # factor (Python-call overhead only).  Generous bound for slow CI.
    assert incremental < max(100 * bulk_time, 2.0)
    assert len(one) == len(bulk) == 10_000


# -- persistence -----------------------------------------------------------


@pytest.fixture()
def saved_index(tmp_path):
    vecs = _corpus(120)
    vi = VectorIndex(32)
    vi.add_batch(list(range(120)), vecs)
    vi.remove(7)  # tombstones must not survive the save
    save_index(vi, tmp_path / "idx")
    return vi, vecs, tmp_path / "idx"


def test_persistence_round_trip_identical_results(saved_index):
    vi, vecs, path = saved_index
    loaded = load_index(path)
    q = vecs[42] + 0.01
    a = vi.search_vector(q, top_k=10)
    b = loaded.search_vector(q, top_k=10)
    assert [i for i, _ in a] == [i for i, _ in b]
    assert np.allclose([s for _, s in a], [s for _, s in b], atol=1e-6)
    assert 7 not in loaded and len(loaded) == 119


def test_persistence_memmap_load_is_mutable_after_copy(saved_index):
    _, vecs, path = saved_index
    loaded = load_index(path, mmap=True)
    assert loaded.stats()["readonly"] is True
    loaded.add("new", np.ones(32))  # first write materializes the memmap
    assert "new" in loaded and loaded.stats()["readonly"] is False


def test_persistence_truncated_vectors_fail_loud(saved_index):
    _, _, path = saved_index
    raw = (path / "vectors.npy").read_bytes()
    (path / "vectors.npy").write_bytes(raw[: len(raw) // 2])
    with pytest.raises(IndexPersistenceError) as err:
        load_index(path)
    assert err.value.reason in ("bad-vectors", "shape")


def test_persistence_corrupted_bytes_fail_checksum(saved_index):
    _, _, path = saved_index
    raw = bytearray((path / "vectors.npy").read_bytes())
    raw[-100] ^= 0xFF  # flip data bits, keep shape valid
    (path / "vectors.npy").write_bytes(bytes(raw))
    with pytest.raises(IndexPersistenceError) as err:
        load_index(path)
    assert err.value.reason == "checksum"


def test_persistence_version_and_missing(saved_index, tmp_path):
    _, _, path = saved_index
    manifest = json.loads((path / "manifest.json").read_text())
    manifest["version"] = 99
    (path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(IndexPersistenceError) as err:
        load_index(path)
    assert err.value.reason == "version"
    with pytest.raises(IndexPersistenceError) as err:
        load_index(tmp_path / "nowhere")
    assert err.value.reason == "missing"


def test_persistence_manifest_info(saved_index):
    _, _, path = saved_index
    info = manifest_info(path)
    assert info["count"] == 119 and info["dim"] == 32


# -- random-hyperplane LSH -------------------------------------------------


def test_hyperplane_lsh_self_retrieval_and_remove():
    vecs = _corpus(100)
    lsh = RandomHyperplaneLSH(32, bands=8, rows=6, seed=1)
    lsh.add_batch(list(range(100)), vecs)
    assert 5 in lsh.candidates(vecs[5])
    assert lsh.remove(5) is True
    assert lsh.remove(5) is False
    assert 5 not in lsh.candidates(vecs[5])
    assert len(lsh) == 99


def test_hyperplane_lsh_re_add_replaces():
    lsh = RandomHyperplaneLSH(8, bands=4, rows=4, seed=1)
    lsh.add("a", np.ones(8))
    lsh.add("a", -np.ones(8))  # re-add with the opposite vector
    assert len(lsh) == 1
    assert "a" not in lsh.candidates(np.ones(8))
    assert "a" in lsh.candidates(-np.ones(8))


# -- two-stage index -------------------------------------------------------


def test_two_stage_scores_are_exact_subset():
    vecs = _corpus(500)
    exact = VectorIndex(32)
    exact.add_batch(list(range(500)), vecs)
    ts = TwoStageIndex(32, bands=16, rows=8, seed=3, candidate_multiplier=2)
    ts.add_batch(list(range(500)), vecs)
    full = dict(exact.search_vector(vecs[3], top_k=500))
    for item, score in ts.search_vector(vecs[3], top_k=10):
        assert item in full  # two-stage results ⊆ exact results
        assert score == pytest.approx(full[item], abs=1e-6)


def test_two_stage_small_corpus_falls_back_to_exact():
    vecs = _corpus(20)
    ts = TwoStageIndex(32, bands=4, rows=16, seed=3, candidate_multiplier=4)
    exact = VectorIndex(32)
    ts.add_batch(list(range(20)), vecs)
    exact.add_batch(list(range(20)), vecs)
    assert ts.search_vector(vecs[0], top_k=5) == exact.search_vector(
        vecs[0], top_k=5
    )
    assert ts.stats()["fallbacks"] == 1


def test_two_stage_recall_at_10_on_1k_corpus():
    n, dim = 1000, 32
    vecs = _corpus(n, dim=dim, clusters=50, seed=11)
    exact = VectorIndex(dim)
    exact.add_batch(list(range(n)), vecs)
    ts = TwoStageIndex(dim, bands=16, rows=8, seed=11, candidate_multiplier=1)
    ts.add_batch(list(range(n)), vecs)
    rng = np.random.default_rng(99)
    hits = total = 0
    queries = vecs[rng.choice(n, size=50, replace=False)] + (
        0.05 * rng.standard_normal((50, dim)).astype(np.float32)
    )
    approx_batch = ts.search_batch(queries, top_k=10)
    for query, approx in zip(queries, approx_batch):
        truth = {i for i, _ in exact.search_vector(query, top_k=10)}
        hits += len({i for i, _ in approx} & truth)
        total += len(truth)
    assert hits / total >= 0.9


def test_two_stage_remove_consistency():
    vecs = _corpus(200)
    ts = TwoStageIndex(32, bands=16, rows=6, seed=5)
    ts.add_batch(list(range(200)), vecs)
    assert ts.remove(10) is True
    assert ts.remove(10) is False
    assert 10 not in ts
    for item, _ in ts.search_vector(vecs[10], top_k=20):
        assert item != 10


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=199), st.integers(min_value=1, max_value=15))
def test_two_stage_subset_property(query_row, top_k):
    vecs = _corpus(200, seed=7)
    ts = TwoStageIndex(32, bands=12, rows=6, seed=7, candidate_multiplier=1)
    ts.add_batch(list(range(200)), vecs)
    exact = VectorIndex(32)
    exact.add_batch(list(range(200)), vecs)
    full = dict(exact.search_vector(vecs[query_row], top_k=200))
    result = ts.search_vector(vecs[query_row], top_k=top_k)
    assert len(result) <= top_k
    scores = [s for _, s in result]
    assert scores == sorted(scores, reverse=True)
    for item, score in result:
        assert score == pytest.approx(full[item], abs=1e-6)


# -- MinHash LSH fixes (satellite) -----------------------------------------


def test_minhash_duplicate_re_add_no_duplicates():
    idx = MinHashLSHIndex(num_perm=16, bands=4, rows=4)
    idx.add("a", {"f1", "f2", "f3"})
    idx.add("a", {"f1", "f2", "f3"})  # same features, added twice
    assert len(idx) == 1
    candidates = idx.candidates({"f1", "f2", "f3"})
    assert candidates == {"a"}
    # the underlying buckets must hold 'a' once per band, not twice
    for band_buckets in idx._buckets:
        for bucket in band_buckets.values():
            assert bucket.count("a") <= 1


def test_minhash_re_add_with_new_features_drops_stale_buckets():
    idx = MinHashLSHIndex(num_perm=16, bands=4, rows=4)
    idx.add("a", {"old1", "old2", "old3"})
    idx.add("a", {"new1", "new2", "new3"})
    assert idx.candidates({"old1", "old2", "old3"}) == set()
    assert "a" in idx.candidates({"new1", "new2", "new3"})
    hits = idx.query({"new1", "new2", "new3"})
    assert hits and hits[0][0] == "a" and hits[0][1] == pytest.approx(1.0)


def test_minhash_remove_then_query():
    idx = MinHashLSHIndex(num_perm=16, bands=4, rows=4)
    idx.add("a", {"x", "y"})
    idx.add("b", {"x", "z"})
    assert idx.remove("a") is True
    assert idx.remove("a") is False
    assert len(idx) == 1
    assert "a" not in idx.candidates({"x", "y"})
    assert [h[0] for h in idx.query({"x", "z"})] == ["b"]


# -- SemanticSearch batched API --------------------------------------------


def test_semantic_search_batch_matches_single():
    s = SemanticSearch()
    for i, text in enumerate(
        ["counts words in text", "checks numbers for primality", "sorts records"]
    ):
        s.add(i, text)
    queries = ["word counting", "prime numbers"]
    batched = s.search_batch(queries, top_k=3)
    for query, result in zip(queries, batched):
        assert [i for i, _ in result] == [i for i, _ in s.search(query, top_k=3)]
    assert s.search_batch([], top_k=3) == []


def test_semantic_search_two_stage_backend():
    from repro.models.embedder import UniXcoderEmbedder

    embedder = UniXcoderEmbedder()
    s = SemanticSearch(embedder, index=TwoStageIndex(embedder.dim))
    s.add("w", "counts the words in a text document")
    s.add("p", "checks whether a number is prime")
    assert s.search("how many words", top_k=1)[0][0] == "w"


# -- registry-service integration ------------------------------------------


_PE_TEMPLATE = (
    "class {name}(IterativePE):\n"
    "    def _process(self, item):\n"
    "        return item  # {tag}\n"
)

_DESCRIPTIONS = [
    "Counts the words in each line of text.",
    "Filters the stream keeping only prime numbers.",
    "Detects anomalies in a sensor stream.",
    "Sorts incoming records by their timestamp.",
    "Splits text into lowercase tokens.",
    "Computes a running average of values.",
    "Joins two keyed streams on their key.",
    "Deduplicates repeated events in a window.",
    "Converts temperatures from celsius to fahrenheit.",
    "Aggregates counts per user session.",
    "Compresses payloads before sending downstream.",
    "Validates records against a schema.",
]


def _populate(client):
    for i, desc in enumerate(_DESCRIPTIONS):
        client.register_PE(
            _PE_TEMPLATE.format(name=f"Pe{i}", tag=i), name=f"Pe{i}", description=desc
        )


def test_service_incremental_no_rebuild_per_mutation(tmp_path):
    server = LaminarServer()
    try:
        client = LaminarClient(server=server)
        _populate(client)
        client.search_Registry_Semantic("count words")
        first = server.registry.index_stats()["kinds"]["pe"]["rebuilds"]
        client.register_PE(
            _PE_TEMPLATE.format(name="Extra", tag="x"),
            name="Extra",
            description="Extracts named entities from text.",
        )
        hits = client.search_Registry_Semantic("extract named entities")
        assert hits[0]["peName"] == "Extra"
        client.remove_PE("Extra")
        ids = [h["peName"] for h in client.search_Registry_Semantic("entities", top_k=20)]
        assert "Extra" not in ids
        # register + search + remove + search: all deltas, zero rebuilds
        stats = server.registry.index_stats()
        assert stats["kinds"]["pe"]["rebuilds"] == first
        # a PE mutation must not stale the untouched workflow index either
        assert stats["kinds"]["workflow"]["synced"] is True
        wf_rebuilds = stats["kinds"]["workflow"]["rebuilds"]
        client.register_PE(
            _PE_TEMPLATE.format(name="Another", tag="y"),
            name="Another",
            description="Normalizes unicode text fields.",
        )
        stats = server.registry.index_stats()
        assert stats["kinds"]["workflow"]["rebuilds"] == wf_rebuilds
    finally:
        server.close()


def test_service_import_triggers_rebuild(tmp_path):
    source = LaminarServer()
    target = LaminarServer()
    try:
        src_client = LaminarClient(server=source)
        _populate(src_client)
        dump = src_client.export_Registry()
        dst_client = LaminarClient(server=target)
        dst_client.search_Registry_Semantic("anything")  # build the cold index
        before = target.registry.index_stats()["kinds"]["pe"]["rebuilds"]
        dst_client.import_Registry(dump)
        hits = dst_client.search_Registry_Semantic("count words")
        assert hits and hits[0]["peName"] == "Pe0"
        assert target.registry.index_stats()["kinds"]["pe"]["rebuilds"] > before
    finally:
        source.close()
        target.close()


def test_service_restart_warm_start_identical_top10(tmp_path):
    db = str(tmp_path / "reg.sqlite")
    index_dir = str(tmp_path / "index")
    server = LaminarServer(db_path=db, index_dir=index_dir)
    try:
        client = LaminarClient(server=server)
        _populate(client)
        expected = client.search_Registry_Semantic("text processing", top_k=10)
        client.index_Save()
    finally:
        server.close()

    warm = LaminarServer(db_path=db, index_dir=index_dir)
    cold = LaminarServer(db_path=db)  # no index_dir: fresh rebuild
    try:
        warm_hits = LaminarClient(server=warm).search_Registry_Semantic(
            "text processing", top_k=10
        )
        cold_hits = LaminarClient(server=cold).search_Registry_Semantic(
            "text processing", top_k=10
        )
        assert warm_hits == cold_hits == expected
        events = warm.registry.index_stats()["events"]
        assert any("index_warm_start" in e for e in events)
        assert warm.registry.index_stats()["kinds"]["pe"]["rebuilds"] == 0
    finally:
        warm.close()
        cold.close()


def test_service_corrupt_index_rebuilds_from_registry(tmp_path):
    db = str(tmp_path / "reg.sqlite")
    index_dir = tmp_path / "index"
    server = LaminarServer(db_path=db, index_dir=str(index_dir))
    try:
        client = LaminarClient(server=server)
        _populate(client)
        expected = client.search_Registry_Semantic("prime numbers", top_k=5)
        client.index_Save()
    finally:
        server.close()

    vectors = index_dir / "pe" / "vectors.npy"
    raw = bytearray(vectors.read_bytes())
    raw[-50] ^= 0xFF
    vectors.write_bytes(bytes(raw))

    server = LaminarServer(db_path=db, index_dir=str(index_dir))
    try:
        client = LaminarClient(server=server)
        hits = client.search_Registry_Semantic("prime numbers", top_k=5)
        assert hits == expected  # correct results despite the corrupt file
        stats = server.registry.index_stats()
        assert any("index_corrupt" in e for e in stats["events"])
        assert stats["kinds"]["pe"]["rebuilds"] == 1
    finally:
        server.close()


def test_service_stale_persisted_index_rebuilds(tmp_path):
    db = str(tmp_path / "reg.sqlite")
    index_dir = str(tmp_path / "index")
    server = LaminarServer(db_path=db, index_dir=index_dir)
    try:
        client = LaminarClient(server=server)
        _populate(client)
        client.index_Save()
        # Mutate the registry *after* the save: the persisted index no
        # longer matches the truth and must not be served.
        client.register_PE(
            _PE_TEMPLATE.format(name="Late", tag="l"),
            name="Late",
            description="Translates text between languages.",
        )
    finally:
        server.close()

    server = LaminarServer(db_path=db, index_dir=index_dir)
    try:
        client = LaminarClient(server=server)
        hits = client.search_Registry_Semantic("translate languages", top_k=3)
        assert hits[0]["peName"] == "Late"
        assert any(
            "index_stale" in e for e in server.registry.index_stats()["events"]
        )
    finally:
        server.close()


def test_service_index_save_without_dir_is_400():
    server = LaminarServer()
    try:
        client = LaminarClient(server=server)
        with pytest.raises(ClientError) as err:
            client.index_Save()
        assert err.value.status == 400
    finally:
        server.close()


def test_service_index_metrics_exposed():
    server = LaminarServer()
    try:
        client = LaminarClient(server=server)
        _populate(client)
        client.search_Registry_Semantic("words")
        text = client.get_Metrics()["text"]
        assert 'laminar_search_queries_total{mode="semantic",kind="pe"}' in text
        assert "laminar_search_query_seconds" in text
        assert "laminar_search_index_size" in text
    finally:
        server.close()


# -- two-stage (LSH) persistence ----------------------------------------------


@pytest.fixture()
def saved_two_stage(tmp_path):
    vecs = _corpus(300)
    idx = TwoStageIndex(32, bands=8, rows=6, seed=99, candidate_multiplier=2)
    idx.add_batch(list(range(300)), vecs)
    save_index(idx, tmp_path / "idx")
    return idx, vecs, tmp_path / "idx"


def test_two_stage_round_trip_restores_buckets(saved_two_stage):
    idx, vecs, path = saved_two_stage
    loaded = load_index(path)
    assert isinstance(loaded, TwoStageIndex)
    assert len(loaded) == 300
    assert loaded.lsh.bands == 8 and loaded.lsh.rows == 6
    assert loaded.lsh.seed == 99 and loaded.candidate_multiplier == 2
    q = vecs[42] + 0.01
    # identical candidate sets (bucket maps restored, planes reseeded)
    assert idx.lsh.candidates(q) == loaded.lsh.candidates(q)
    # identical two-stage results with exact scores
    a = idx.search_vector(q, top_k=10)
    b = loaded.search_vector(q, top_k=10)
    assert [i for i, _ in a] == [i for i, _ in b]
    assert np.allclose([s for _, s in a], [s for _, s in b], atol=1e-6)


def test_two_stage_warm_start_skips_projection(saved_two_stage, monkeypatch):
    _, _, path = saved_two_stage
    # A warm start must never re-project stored vectors through the
    # hyperplanes — only queries do that, after loading.
    calls = {"n": 0}
    original = RandomHyperplaneLSH._band_keys

    def counting(self, vectors):
        calls["n"] += 1
        return original(self, vectors)

    monkeypatch.setattr(RandomHyperplaneLSH, "_band_keys", counting)
    loaded = load_index(path)
    assert calls["n"] == 0
    assert len(loaded.lsh) == 300


def test_two_stage_manifest_records_lsh(saved_two_stage):
    _, _, path = saved_two_stage
    info = manifest_info(path)
    assert info["lsh"] == {"bands": 8, "rows": 6, "seed": 99}


def test_two_stage_stale_sidecar_fails_loud(saved_two_stage):
    _, _, path = saved_two_stage
    doc = json.loads((path / "lsh.json").read_text())
    doc["keys"] = doc["keys"][:-1]  # sidecar no longer covers every id
    (path / "lsh.json").write_text(json.dumps(doc))
    with pytest.raises(IndexPersistenceError) as err:
        load_index(path)
    assert err.value.reason == "lsh-mismatch"


def test_two_stage_corrupt_sidecar_fails_loud(saved_two_stage):
    _, _, path = saved_two_stage
    (path / "lsh.json").write_text("not json")
    with pytest.raises(IndexPersistenceError) as err:
        load_index(path)
    assert err.value.reason == "bad-lsh"


def test_two_stage_sidecar_version_checked(saved_two_stage):
    _, _, path = saved_two_stage
    doc = json.loads((path / "lsh.json").read_text())
    doc["version"] = 99
    (path / "lsh.json").write_text(json.dumps(doc))
    with pytest.raises(IndexPersistenceError) as err:
        load_index(path)
    assert err.value.reason == "version"


def test_plain_save_drops_stale_sidecar(saved_two_stage):
    idx, vecs, path = saved_two_stage
    vi = VectorIndex(32)
    vi.add_batch([1, 2, 3], vecs[:3])
    save_index(vi, path)  # plain index over a two-stage save
    assert not (path / "lsh.json").exists()
    loaded = load_index(path)
    assert not isinstance(loaded, TwoStageIndex)
    assert len(loaded) == 3
