"""Tests for the sandboxed execution mode."""

import pytest

from repro.laminar.execution import ExecutionEngine
from repro.laminar.execution.sandbox import (
    SandboxViolation,
    make_sandbox_builtins,
)


@pytest.fixture()
def engine():
    return ExecutionEngine()


GOOD_WF = """
import math

class Root(ProducerPE):
    def _process(self, inputs):
        return math.sqrt(16)

g = WorkflowGraph()
g.add(Root("Root"))
"""


def test_sandbox_allows_computation(engine):
    outcome = engine.execute(GOOD_WF, input=1, sandbox=True)
    assert outcome.status == "success"
    assert outcome.outputs == {"Root.output": [4.0]}


def test_sandbox_blocks_disallowed_import(engine):
    code = """
import socket

class X(ProducerPE):
    def _process(self, inputs):
        return 1

g = WorkflowGraph()
g.add(X("X"))
"""
    outcome = engine.execute(code, input=1, sandbox=True)
    assert outcome.status == "error"
    assert "not permitted" in outcome.error


def test_sandbox_blocks_open(engine):
    code = """
class Leak(ProducerPE):
    def _process(self, inputs):
        return open("/etc/hostname").read()

g = WorkflowGraph()
g.add(Leak("Leak"))
"""
    outcome = engine.execute(code, input=1, sandbox=True)
    assert outcome.status == "error"
    assert "open()" in outcome.error or "SandboxViolation" in outcome.error


def test_sandbox_blocks_eval_and_exec(engine):
    for expr in ("eval('1+1')", "exec('x = 1')"):
        code = f"""
class E(ProducerPE):
    def _process(self, inputs):
        return {expr}

g = WorkflowGraph()
g.add(E("E"))
"""
        outcome = engine.execute(code, input=1, sandbox=True)
        assert outcome.status == "error"


def test_sandbox_open_reaches_resources(engine, tmp_path):
    digest = engine.cache.put(b"42\n")
    code = """
class Reader(ProducerPE):
    def _process(self, inputs):
        return int(open(RESOURCES["n.txt"]).read())

g = WorkflowGraph()
g.add(Reader("Reader"))
"""
    outcome = engine.execute(
        code,
        input=1,
        sandbox=True,
        resources=[{"name": "n.txt", "digest": digest}],
    )
    assert outcome.status == "success"
    assert outcome.outputs == {"Reader.output": [42]}


def test_sandbox_open_cannot_escape_resource_dir(engine):
    digest = engine.cache.put(b"data")
    code = """
class Escape(ProducerPE):
    def _process(self, inputs):
        return open(RESOURCE_DIR + "/../../etc/hostname").read()

g = WorkflowGraph()
g.add(Escape("Escape"))
"""
    outcome = engine.execute(
        code,
        input=1,
        sandbox=True,
        resources=[{"name": "f", "digest": digest}],
    )
    assert outcome.status == "error"


def test_sandbox_open_cannot_write(engine):
    digest = engine.cache.put(b"data")
    code = """
class Writer(ProducerPE):
    def _process(self, inputs):
        open(RESOURCES["f"], "w").write("oops")
        return 1

g = WorkflowGraph()
g.add(Writer("Writer"))
"""
    outcome = engine.execute(
        code, input=1, sandbox=True, resources=[{"name": "f", "digest": digest}]
    )
    assert outcome.status == "error"


def test_unsandboxed_open_still_works(engine, tmp_path):
    path = tmp_path / "free.txt"
    path.write_text("free")
    code = f"""
class Free(ProducerPE):
    def _process(self, inputs):
        return open({str(path)!r}).read()

g = WorkflowGraph()
g.add(Free("Free"))
"""
    outcome = engine.execute(code, input=1, sandbox=False)
    assert outcome.status == "success"


# -- unit-level builtins table ------------------------------------------------


def test_builtins_table_denies_capabilities():
    table = make_sandbox_builtins()
    for denied in ("exec", "eval", "compile", "input", "breakpoint"):
        assert denied not in table


def test_builtins_table_guards_import():
    table = make_sandbox_builtins()
    module = table["__import__"]("math")
    assert module.sqrt(4) == 2
    with pytest.raises(SandboxViolation):
        table["__import__"]("subprocess")


def test_builtins_open_without_resources():
    table = make_sandbox_builtins(resource_dir=None)
    with pytest.raises(SandboxViolation):
        table["open"]("/etc/hostname")


def test_builtins_keeps_computation():
    table = make_sandbox_builtins()
    for name in ("len", "range", "sum", "min", "max", "sorted", "print", "isinstance"):
        assert name in table
