"""Tests for the shared code tokenizer (repro.models.tokenize)."""

from hypothesis import given, strategies as st

from repro.models.tokenize import (
    code_tokens,
    is_keyword,
    split_identifier,
    stem,
    subtokens,
)


def test_split_snake_case():
    assert split_identifier("num_events_total") == ["num", "events", "total"]


def test_split_camel_case():
    assert split_identifier("parseHTTPResponse") == ["parse", "http", "response"]


def test_split_mixed():
    assert split_identifier("getUser_byID2") == ["get", "user", "by", "id2"]


def test_split_empty():
    assert split_identifier("") == []
    assert split_identifier("___") == []


def test_subtokens_strips_punctuation():
    assert subtokens("foo(bar, baz)") == ["foo", "bar", "baz"]


def test_subtokens_stopwords():
    toks = subtokens("the data is a value", drop_stopwords=True)
    assert toks == []


def test_subtokens_stemming():
    toks = subtokens("anomalies detection detects", stem_words=True)
    assert toks[0] == toks_from("anomaly")
    # 'detection' and 'detects' share the stem 'detect'
    assert toks[1] == toks[2]


def toks_from(word):
    return subtokens(word, stem_words=True)[0]


def test_stem_short_words_untouched():
    assert stem("ab") == "ab"
    assert stem("sum") == "sum"


def test_stem_common_suffixes():
    assert stem("anomalies") == "anomaly"
    assert stem("running") == "runn"
    assert stem("computed") == "comput"


def test_code_tokens_basic():
    toks = code_tokens("x = foo(1, 'hi')")
    assert "x" in toks and "foo" in toks
    assert "<num>" in toks and "<str>" in toks
    assert "hi" not in toks  # literal text collapsed


def test_code_tokens_drops_comments():
    toks = code_tokens("x = 1  # a comment\n")
    assert "comment" not in toks


def test_code_tokens_partial_snippet_fallback():
    # Unbalanced parens defeat the strict tokenizer; regex fallback kicks in.
    toks = code_tokens("def f(x:\n    return x +")
    assert "def" in toks and "return" in toks


def test_is_keyword():
    assert is_keyword("if")
    assert is_keyword("match")  # soft keyword
    assert not is_keyword("foo")


@given(st.text(alphabet=st.characters(categories=("Ll", "Lu", "Nd")), max_size=30))
def test_split_identifier_lowercases(ident):
    for part in split_identifier(ident):
        assert part == part.lower()


@given(st.text(max_size=200))
def test_subtokens_never_crashes(text):
    subtokens(text, drop_stopwords=True, stem_words=True)


@given(st.text(max_size=200))
def test_code_tokens_never_crashes(source):
    code_tokens(source)
