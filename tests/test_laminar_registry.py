"""Tests for the registry database, schema and repositories."""

import pytest

from repro.laminar.registry import RegistryDatabase, schema_summary
from repro.laminar.server.dataaccess import (
    ExecutionRepository,
    PERepository,
    ResponseRepository,
    UserRepository,
    WorkflowRepository,
)


@pytest.fixture()
def db():
    database = RegistryDatabase()
    yield database
    database.close()


@pytest.fixture()
def repos(db):
    return {
        "users": UserRepository(db),
        "pes": PERepository(db),
        "workflows": WorkflowRepository(db),
        "executions": ExecutionRepository(db),
        "responses": ResponseRepository(db),
    }


def test_schema_has_table2_entities(db):
    assert {
        "User",
        "Workflow",
        "ProcessingElement",
        "Execution",
        "Response",
        "WorkflowPE",
    } <= db.table_names()


def test_schema_has_indexes(db):
    names = db.index_names()
    assert "idx_pe_name" in names
    assert "idx_wf_name" in names


def test_clob_columns_present(db):
    assert "peCode" in db.columns("ProcessingElement")
    assert "sptEmbedding" in db.columns("ProcessingElement")
    assert "descEmbedding" in db.columns("Workflow")


def test_schema_summary_matches_table2():
    # Table II's five entities, plus the Job table the async-run subsystem
    # adds and the ApiKey table backing long-lived credentials.
    tables = {row["table"] for row in schema_summary()}
    assert tables == {
        "User",
        "ApiKey",
        "Workflow",
        "ProcessingElement",
        "Execution",
        "Response",
        "Job",
    }


def test_user_roundtrip(repos):
    user = repos["users"].create("alice", "hash")
    assert repos["users"].get(user.userId).userName == "alice"
    assert repos["users"].by_name("alice").userId == user.userId
    assert repos["users"].by_name("bob") is None


def test_user_name_unique(repos):
    repos["users"].create("alice", "h")
    with pytest.raises(Exception):
        repos["users"].create("alice", "h2")


def _pe(repos, name="IsPrime"):
    user = repos["users"].by_name("u") or repos["users"].create("u", "h")
    return repos["pes"].create(
        user_id=user.userId,
        name=name,
        code=f"class {name}(IterativePE): pass",
        description=f"The {name} PE.",
        desc_embedding="[0.1, 0.2]",
        spt_embedding='{"f": 1}',
    )


def test_pe_roundtrip(repos):
    pe = _pe(repos)
    fetched = repos["pes"].get(pe.peId)
    assert fetched.peName == "IsPrime"
    assert fetched.desc_vector() == [0.1, 0.2]
    assert fetched.spt_features() == {"f": 1}


def test_pe_by_name_returns_latest(repos):
    _pe(repos, "Dup")
    second = _pe(repos, "Dup")
    assert repos["pes"].by_name("Dup").peId == second.peId


def test_pe_update_description(repos):
    pe = _pe(repos)
    repos["pes"].update_description(pe.peId, "new desc", "[1.0]")
    assert repos["pes"].get(pe.peId).description == "new desc"


def test_pe_delete(repos):
    pe = _pe(repos)
    assert repos["pes"].delete(pe.peId) is True
    assert repos["pes"].get(pe.peId) is None
    assert repos["pes"].delete(pe.peId) is False


def test_pe_delete_all(repos):
    _pe(repos, "A")
    _pe(repos, "B")
    assert repos["pes"].delete_all() == 2
    assert repos["pes"].all() == []


def test_pe_literal_search_matches_name_and_description(repos):
    _pe(repos, "WordCounter")
    _pe(repos, "Sorter")
    hits = repos["pes"].literal_search("word")
    assert [h.peName for h in hits] == ["WordCounter"]
    hits = repos["pes"].literal_search("PE.")  # in every description
    assert len(hits) == 2


def _wf(repos, name="wf1"):
    user = repos["users"].by_name("u") or repos["users"].create("u", "h")
    return repos["workflows"].create(
        user_id=user.userId,
        name=name,
        code="graph = WorkflowGraph()",
        entry_point="graph",
        description=f"workflow {name}",
        desc_embedding="[]",
        spt_embedding="{}",
    )


def test_workflow_roundtrip(repos):
    wf = _wf(repos)
    assert repos["workflows"].get(wf.workflowId).workflowName == "wf1"
    assert repos["workflows"].by_name("wf1").workflowId == wf.workflowId


def test_workflow_pe_links(repos):
    wf = _wf(repos)
    pe1, pe2 = _pe(repos, "P1"), _pe(repos, "P2")
    repos["workflows"].link_pe(wf.workflowId, pe1.peId)
    repos["workflows"].link_pe(wf.workflowId, pe2.peId)
    repos["workflows"].link_pe(wf.workflowId, pe2.peId)  # idempotent
    names = [pe.peName for pe in repos["workflows"].pes_of(wf.workflowId)]
    assert names == ["P1", "P2"]
    wfs = repos["workflows"].workflows_of_pe(pe1.peId)
    assert [w.workflowName for w in wfs] == ["wf1"]


def test_pe_reusable_across_workflows(repos):
    """Table II: PEs associate with multiple workflows (many-to-many)."""
    wf1, wf2 = _wf(repos, "w1"), _wf(repos, "w2")
    pe = _pe(repos, "Shared")
    repos["workflows"].link_pe(wf1.workflowId, pe.peId)
    repos["workflows"].link_pe(wf2.workflowId, pe.peId)
    assert len(repos["workflows"].workflows_of_pe(pe.peId)) == 2


def test_workflow_delete_cascades_links(repos, db):
    wf = _wf(repos)
    pe = _pe(repos)
    repos["workflows"].link_pe(wf.workflowId, pe.peId)
    repos["workflows"].delete(wf.workflowId)
    assert db.query("SELECT * FROM WorkflowPE") == []
    # the PE itself survives — it is reusable
    assert repos["pes"].get(pe.peId) is not None


def test_execution_lifecycle(repos):
    wf = _wf(repos)
    user = repos["users"].by_name("u")
    execution = repos["executions"].create(wf.workflowId, user.userId, "multi", "5")
    assert execution.status == "running"
    repos["executions"].finish(execution.executionId, "success")
    finished = repos["executions"].get(execution.executionId)
    assert finished.status == "success"
    assert finished.finishedAt is not None
    assert len(repos["executions"].for_workflow(wf.workflowId)) == 1


def test_response_linked_to_execution(repos):
    wf = _wf(repos)
    user = repos["users"].by_name("u")
    execution = repos["executions"].create(wf.workflowId, user.userId, "simple", "1")
    repos["responses"].create(execution.executionId, '{"out": [1]}', "line1\nline2")
    responses = repos["responses"].for_execution(execution.executionId)
    assert len(responses) == 1
    assert "line1" in responses[0].logLines


def test_database_thread_safety():
    import threading

    db = RegistryDatabase()
    users = UserRepository(db)

    def create(i):
        users.create(f"user{i}", "h")

    threads = [threading.Thread(target=create, args=(i,)) for i in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(db.query("SELECT * FROM User")) == 16
    db.close()


def test_on_disk_registry_survives_restart(tmp_path):
    """LaminarServer with a file-backed registry keeps content across
    restarts — the persistence story of the MySQL→SQLite substitution."""
    from repro.laminar import LaminarClient
    from repro.laminar.server.app import LaminarServer

    db_file = tmp_path / "registry.db"
    server = LaminarServer(str(db_file))
    client = LaminarClient(server=server)
    client.register_PE(
        'class Durable(IterativePE):\n    """Durable PE."""\n'
        "    def _process(self, x):\n        return x\n"
    )
    server.close()

    reborn = LaminarServer(str(db_file))
    client2 = LaminarClient(server=reborn)
    assert client2.get_PE("Durable")["peName"] == "Durable"
    hits = client2.search_Registry_Semantic("durable")
    assert hits and hits[0]["peName"] == "Durable"
    reborn.close()
