"""Tests for the standalone search front-ends (repro.search)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aroma.spt import ParseFailure
from repro.search import CodeSearch, LiteralSearch, SemanticSearch

ITEMS = [
    {"id": 1, "name": "IsPrime", "description": "Checks whether a number is prime."},
    {"id": 2, "name": "WordCount", "description": "Counts words in text."},
    {"id": 3, "name": "AnomalyDetector", "description": "Detects anomalies in streams."},
]


# -- literal ---------------------------------------------------------------


def test_literal_matches_name():
    ls = LiteralSearch()
    hits = ls.search(ITEMS, "prime")
    assert [h["id"] for h in hits] == [1]


def test_literal_matches_description():
    ls = LiteralSearch()
    hits = ls.search(ITEMS, "words")
    assert [h["id"] for h in hits] == [2]


def test_literal_case_insensitive():
    ls = LiteralSearch()
    assert [h["id"] for h in ls.search(ITEMS, "ANOMAL")] == [3]


def test_literal_no_match():
    assert LiteralSearch().search(ITEMS, "zzz") == []


def test_literal_custom_accessors():
    ls = LiteralSearch(name_of=lambda t: t[0], description_of=lambda t: t[1])
    hits = ls.search([("alpha", "first"), ("beta", "second")], "bet")
    assert hits == [("beta", "second")]


def test_literal_highlight():
    ls = LiteralSearch()
    assert ls.highlight("a Prime number", "prime") == "a **Prime** number"


def test_literal_highlight_multiple():
    ls = LiteralSearch()
    assert ls.highlight("ab ab", "ab") == "**ab** **ab**"


def test_literal_highlight_empty_term():
    assert LiteralSearch().highlight("text", "") == "text"


@given(
    st.text(alphabet="abcdef XYZ", max_size=30),
    st.text(alphabet="abcdef", min_size=1, max_size=5),
)
def test_literal_highlight_preserves_content(text, term):
    marked = LiteralSearch().highlight(text, term, marker="|")
    assert marked.replace("|", "") == text


# -- semantic --------------------------------------------------------------------


@pytest.fixture()
def semantic():
    s = SemanticSearch()
    for item in ITEMS:
        s.add(item["id"], item["description"])
    return s


def test_semantic_ranks_relevant_first(semantic):
    results = semantic.search("find anomalies in a sensor stream")
    assert results[0][0] == 3


def test_semantic_len_contains(semantic):
    assert len(semantic) == 3
    assert 1 in semantic
    assert 99 not in semantic


def test_semantic_add_updates_in_place(semantic):
    semantic.add(1, "totally different topic about databases")
    assert len(semantic) == 3
    results = semantic.search("database topics")
    assert results[0][0] == 1


def test_semantic_remove(semantic):
    assert semantic.remove(2) is True
    assert semantic.remove(2) is False
    assert len(semantic) == 2
    ids = [i for i, _ in semantic.search("anything", top_k=10)]
    assert 2 not in ids


def test_semantic_remove_keeps_row_mapping(semantic):
    semantic.remove(1)
    results = semantic.search("anomalies in streams")
    assert results[0][0] == 3


def test_semantic_empty():
    assert SemanticSearch().search("query") == []


def test_semantic_precomputed_vectors():
    s = SemanticSearch()
    vec = s.embedder.encode("counts words")[0].tolist()
    s.add_precomputed("w", vec)
    results = s.search("word counting")
    assert results[0][0] == "w"


def test_semantic_top_k(semantic):
    assert len(semantic.search("anything", top_k=2)) == 2


# -- code ---------------------------------------------------------------------------


CODES = {
    "prod": "class NumberProducer(ProducerPE):\n    def _process(self, i):\n        return random.randint(1, 1000)\n",
    "prime": "class IsPrime(IterativePE):\n    def _process(self, n):\n        return n if all(n % i for i in range(2, n)) else None\n",
}


@pytest.fixture()
def code_index():
    cs = CodeSearch()
    for k, v in CODES.items():
        cs.add(k, v)
    return cs


def test_code_spt_search(code_index):
    hits = code_index.search("random.randint(1, 1000)")
    assert hits and hits[0][0] == "prod"
    assert hits[0][1] >= 6.0


def test_code_spt_threshold_filters(code_index):
    assert code_index.search_spt("unrelated_identifier", threshold=6.0) == []


def test_code_llm_search(code_index):
    hits = code_index.search(CODES["prime"], embedding_type="llm")
    assert hits[0][0] == "prime"
    assert hits[0][1] == pytest.approx(1.0)


def test_code_unknown_type(code_index):
    with pytest.raises(ValueError):
        code_index.search("x", embedding_type="bert")


def test_code_remove(code_index):
    assert code_index.remove("prod") is True
    assert code_index.remove("prod") is False
    assert code_index.search_spt("random.randint(1, 1000)", threshold=1.0) != [
        ("prod", pytest.approx(12.0))
    ]


def test_code_unparseable_snippet_raises(code_index):
    with pytest.raises(ParseFailure):
        code_index.search_spt("£$%^&*")


def test_code_precomputed_features():
    cs = CodeSearch()
    cs.add("x", "ignored source", features={"foo": 2, "bar": 1})
    hits = cs.search_spt("foo\nbar", threshold=1.0)
    assert hits and hits[0][0] == "x"


def test_code_empty_llm():
    assert CodeSearch().search_llm("x") == []


@settings(max_examples=15, deadline=None)
@given(st.sampled_from(list(CODES)))
def test_code_self_retrieval(key):
    cs = CodeSearch()
    for k, v in CODES.items():
        cs.add(k, v)
    hits = cs.search_spt(CODES[key], threshold=1.0)
    assert hits[0][0] == key
