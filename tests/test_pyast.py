"""Tests for serialized AST parsing (repro.pyast).

The lock exists because CPython 3.11's AST constructor recursion-depth
accounting is not thread-safe: concurrent ``ast.parse`` calls from the
server's handler threads sporadically raised ``SystemError: AST
constructor recursion depth mismatch``.  The stress test here hammers
the helper from many threads; with the lock it must never error.
"""

import ast
import threading

from repro import pyast

DEEP_SOURCE = (
    "def f(x):\n"
    + "".join(f"    if x > {i}:\n" + "    " * 2 + f"x += {i}\n" for i in range(20))
    + "    return x\n"
)


def test_parse_returns_ast():
    tree = pyast.parse("x = 1")
    assert isinstance(tree, ast.Module)


def test_parse_syntax_error_propagates():
    import pytest

    with pytest.raises(SyntaxError):
        pyast.parse("def f(:")


def test_compile_source_executes():
    code = pyast.compile_source("y = 2 + 3", "<test>", "exec")
    namespace = {}
    exec(code, namespace)
    assert namespace["y"] == 5


def test_compile_accepts_ast():
    tree = pyast.parse("z = 7")
    code = pyast.compile_source(tree, "<test>", "exec")
    namespace = {}
    exec(code, namespace)
    assert namespace["z"] == 7


def test_concurrent_parse_stress():
    """Many threads parsing nested code concurrently must never raise
    SystemError (the CPython bug the lock mitigates)."""
    errors = []

    def hammer():
        try:
            for _ in range(60):
                pyast.parse(DEEP_SOURCE)
                pyast.compile_source(DEEP_SOURCE, "<stress>", "exec")
        except BaseException as exc:  # noqa: BLE001 - we want everything
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
