"""Unit + property tests for grouping/routing (repro.d4py.grouping)."""

import pytest
from hypothesis import given, strategies as st

from repro.d4py.grouping import Grouping, _stable_hash


def test_of_none_is_shuffle():
    assert Grouping.of(None).kind == "shuffle"


def test_of_string_forms():
    assert Grouping.of("global").kind == "global"
    assert Grouping.of("all").kind == "all"
    assert Grouping.of("shuffle").kind == "shuffle"


def test_of_sequence_is_group_by():
    g = Grouping.of([0, 2])
    assert g.kind == "group_by"
    assert g.keys == (0, 2)


def test_of_grouping_passthrough():
    g = Grouping("global")
    assert Grouping.of(g) is g


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown grouping"):
        Grouping("banana")


def test_group_by_requires_keys():
    with pytest.raises(ValueError, match="key index"):
        Grouping("group_by")


def test_single_instance_always_zero():
    for kind in ("shuffle", "global", "all"):
        assert Grouping(kind).route("x", 1, 99) == [0]


def test_shuffle_round_robin():
    g = Grouping("shuffle")
    assert [g.route("x", 3, i) for i in range(6)] == [[0], [1], [2], [0], [1], [2]]


def test_global_always_instance_zero():
    g = Grouping("global")
    assert all(g.route(i, 5, i) == [0] for i in range(20))


def test_all_broadcasts():
    assert Grouping("all").route("x", 4, 0) == [0, 1, 2, 3]


def test_group_by_same_key_same_instance():
    g = Grouping.of([0])
    dest1 = g.route(("alice", 1), 7, 0)
    dest2 = g.route(("alice", 999), 7, 5)
    assert dest1 == dest2


def test_group_by_scalar_items():
    g = Grouping.of([0])
    # Scalars group on their own value rather than failing.
    assert g.extract_key(42) == (42,)


def test_extract_key_only_for_group_by():
    with pytest.raises(ValueError):
        Grouping("shuffle").extract_key(1)


# -- property tests ------------------------------------------------------------

items = st.one_of(
    st.integers(), st.text(max_size=20), st.tuples(st.integers(), st.integers())
)


@given(data=items, n=st.integers(1, 64), counter=st.integers(0, 10_000))
def test_route_targets_in_range(data, n, counter):
    for kind in ("shuffle", "global", "all"):
        targets = Grouping(kind).route(data, n, counter)
        assert targets and all(0 <= t < n for t in targets)


@given(
    key=st.text(max_size=10),
    values=st.lists(st.integers(), min_size=1, max_size=10),
    n=st.integers(1, 64),
)
def test_group_by_is_consistent(key, values, n):
    """All items sharing a key land on one instance regardless of payload."""
    g = Grouping.of([0])
    targets = {tuple(g.route((key, v), n, i)) for i, v in enumerate(values)}
    assert len(targets) == 1


@given(value=st.one_of(st.integers(), st.text(max_size=50), st.floats(allow_nan=False)))
def test_stable_hash_is_deterministic(value):
    assert _stable_hash(value) == _stable_hash(value)
    assert _stable_hash(value) >= 0
