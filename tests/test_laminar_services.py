"""Tests for the server's service layer (auth, registry, execution)."""

import pytest

from repro.laminar.server.app import LaminarServer
from repro.laminar.server.services import ServiceError

ISPRIME_PE = '''
class IsPrime(IterativePE):
    """Checks whether a given number is prime and returns it if so."""

    def _process(self, num):
        if num > 1 and all(num % i != 0 for i in range(2, num)):
            return num
'''

ANOMALY_PE = """
class AnomalyDetectionPE(IterativePE):
    def _process(self, record):
        if abs(record - self.mean) > self.threshold:
            return record
"""

WF_SOURCE = (
    "import random\n"
    + ISPRIME_PE
    + """
class NumberProducer(ProducerPE):
    def _process(self, inputs):
        return random.randint(1, 1000)

graph = WorkflowGraph()
prod = NumberProducer("NumberProducer")
prime = IsPrime("IsPrime")
graph.connect(prod, "output", prime, "input")
"""
)


@pytest.fixture()
def server():
    s = LaminarServer()
    yield s
    s.close()


@pytest.fixture()
def guest(server):
    return server.auth.resolve(None)


# -- auth ---------------------------------------------------------------------


def test_register_and_login(server):
    server.auth.register("alice", "pw")
    session = server.auth.login("alice", "pw")
    assert session["token"]
    user = server.auth.resolve(session["token"])
    assert user.userName == "alice"


def test_login_wrong_password(server):
    server.auth.register("alice", "pw")
    with pytest.raises(ServiceError) as err:
        server.auth.login("alice", "nope")
    assert err.value.status == 401


def test_duplicate_user_rejected(server):
    server.auth.register("alice", "pw")
    with pytest.raises(ServiceError) as err:
        server.auth.register("alice", "pw")
    assert err.value.status == 409


def test_invalid_token_rejected(server):
    with pytest.raises(ServiceError):
        server.auth.resolve("bogus-token")


def test_guest_fallback(server):
    guest = server.auth.resolve(None)
    assert guest.userName == "guest"
    assert server.auth.resolve(None).userId == guest.userId


def test_password_hashes_are_salted(server):
    a = server.auth.register("a", "same")
    b = server.auth.register("b", "same")
    ha = server.users.by_name("a").passwordHash
    hb = server.users.by_name("b").passwordHash
    assert ha != hb


# -- PE registration ------------------------------------------------------------


def test_register_pe_generates_metadata(server, guest):
    pe = server.registry.register_pe(guest, ISPRIME_PE)
    assert pe.peName == "IsPrime"
    assert "prime" in pe.description.lower()
    assert len(pe.desc_vector()) > 0
    assert len(pe.spt_features()) > 0


def test_register_pe_explicit_description_kept(server, guest):
    pe = server.registry.register_pe(guest, ISPRIME_PE, description="Custom desc.")
    assert pe.description == "Custom desc."


def test_register_pe_without_class_requires_name(server, guest):
    with pytest.raises(ServiceError) as err:
        server.registry.register_pe(guest, "def foo():\n    return 1")
    assert err.value.status == 400
    pe = server.registry.register_pe(guest, "def foo():\n    return 1", name="FooPE")
    assert pe.peName == "FooPE"


def test_register_pe_invalid_code(server, guest):
    with pytest.raises(ServiceError) as err:
        server.registry.register_pe(guest, "class X(IterativePE:")
    assert err.value.status == 400


def test_extract_pe_classes_filters_non_pes(server):
    code = ISPRIME_PE + "\nclass Helper:\n    pass\n"
    classes = server.registry.extract_pe_classes(code)
    assert [name for name, _ in classes] == ["IsPrime"]


def test_extract_pe_classes_dotted_base(server):
    code = "class X(core.IterativePE):\n    pass\n"
    assert [n for n, _ in server.registry.extract_pe_classes(code)] == ["X"]


# -- workflow registration ----------------------------------------------------------


def test_register_workflow_registers_pes_and_links(server, guest):
    wf, pes = server.registry.register_workflow(guest, WF_SOURCE, "isprime_wf")
    assert wf.workflowName == "isprime_wf"
    assert {pe.peName for pe in pes} == {"IsPrime", "NumberProducer"}
    linked = server.workflows.pes_of(wf.workflowId)
    assert len(linked) == 2
    assert "prime" in wf.description.lower()


def test_workflow_description_generated_from_pes(server, guest):
    wf, _ = server.registry.register_workflow(guest, WF_SOURCE, "isprime_wf")
    assert wf.description.startswith("Workflow isprime wf")


# -- lookup and updates -----------------------------------------------------------------


def test_get_pe_by_id_and_name(server, guest):
    pe = server.registry.register_pe(guest, ISPRIME_PE)
    assert server.registry.get_pe(pe.peId).peId == pe.peId
    assert server.registry.get_pe("IsPrime").peId == pe.peId
    with pytest.raises(ServiceError) as err:
        server.registry.get_pe("Missing")
    assert err.value.status == 404


def test_update_pe_description_reembeds(server, guest):
    pe = server.registry.register_pe(guest, ISPRIME_PE)
    old_vec = pe.desc_vector()
    updated = server.registry.update_pe_description(pe.peId, "finds prime integers")
    assert updated.description == "finds prime integers"
    assert updated.desc_vector() != old_vec


def test_registry_listing(server, guest):
    server.registry.register_pe(guest, ISPRIME_PE)
    server.registry.register_workflow(guest, WF_SOURCE, "wf")
    listing = server.registry.registry_listing()
    assert len(listing["pes"]) >= 2
    assert len(listing["workflows"]) == 1


def test_remove_all(server, guest):
    server.registry.register_pe(guest, ISPRIME_PE)
    server.registry.register_workflow(guest, WF_SOURCE, "wf")
    result = server.registry.remove_all()
    assert result["pes_removed"] >= 1
    assert result["workflows_removed"] == 1


# -- search ----------------------------------------------------------------------------------


def test_literal_search(server, guest):
    server.registry.register_pe(guest, ISPRIME_PE)
    server.registry.register_pe(guest, ANOMALY_PE)
    hits = server.registry.literal_search("anomaly", kind="pe")
    assert [h["peName"] for h in hits["pes"]] == ["AnomalyDetectionPE"]


def test_semantic_search_orders_by_cosine(server, guest):
    server.registry.register_pe(guest, ISPRIME_PE)
    server.registry.register_pe(guest, ANOMALY_PE)
    results = server.registry.semantic_search("a pe that is able to detect anomalies")
    assert results[0]["peName"] == "AnomalyDetectionPE"
    sims = [r["cosine_similarity"] for r in results]
    assert sims == sorted(sims, reverse=True)


def test_semantic_search_empty_registry(server):
    assert server.registry.semantic_search("anything") == []


def test_code_recommendation_spt_threshold(server, guest):
    wf, _ = server.registry.register_workflow(guest, WF_SOURCE, "isprime_wf")
    hits = server.registry.code_recommendation("random.randint(1, 1000)")
    assert hits and hits[0]["peName"] == "NumberProducer"
    assert hits[0]["score"] >= 6.0


def test_code_recommendation_llm_mode(server, guest):
    server.registry.register_pe(guest, ISPRIME_PE)
    hits = server.registry.code_recommendation(
        ISPRIME_PE, embedding_type="llm", threshold=0.5
    )
    assert hits and hits[0]["peName"] == "IsPrime"


def test_code_recommendation_workflow_kind(server, guest):
    server.registry.register_workflow(guest, WF_SOURCE, "isprime_wf")
    hits = server.registry.code_recommendation(
        "random.randint(1, 1000)", kind="workflow"
    )
    assert hits and hits[0]["workflowName"] == "isprime_wf"
    assert hits[0]["occurrences"] >= 1


def test_code_recommendation_workflow_llm_rejected(server):
    with pytest.raises(ServiceError) as err:
        server.registry.code_recommendation("x", kind="workflow", embedding_type="llm")
    assert err.value.status == 400


def test_code_recommendation_bad_embedding_type(server):
    with pytest.raises(ServiceError):
        server.registry.code_recommendation("x", embedding_type="bert")


def test_code_recommendation_unparseable_snippet(server, guest):
    server.registry.register_pe(guest, ISPRIME_PE)
    with pytest.raises(ServiceError) as err:
        server.registry.code_recommendation("£$%^&*")
    assert err.value.status == 400


# -- execution service --------------------------------------------------------------------------


def test_run_workflow_streams_and_records(server, guest):
    wf, _ = server.registry.register_workflow(guest, WF_SOURCE, "isprime_wf")
    stream = server.execution.run_workflow(guest, "isprime_wf", input=10)
    lines = list(stream.chunks)
    summary = stream.summary()
    assert summary["status"] == "success"
    executions = server.executions.for_workflow(wf.workflowId)
    assert len(executions) == 1 and executions[0].status == "success"
    responses = server.responses.for_execution(executions[0].executionId)
    assert len(responses) == 1


def test_run_workflow_error_recorded(server, guest):
    bad = "class Boom(IterativePE):\n    def _process(self, x):\n        raise ValueError('x')\n"
    wf, _ = server.registry.register_workflow(
        guest,
        bad + "\nb = Boom('B')\ngraph = WorkflowGraph()\ngraph.add(b)",
        "bad_wf",
    )
    stream = server.execution.run_workflow(guest, "bad_wf", input=[{"input": 1}])
    list(stream.chunks)
    assert stream.summary()["status"] == "error"


def test_run_unknown_workflow(server, guest):
    with pytest.raises(ServiceError) as err:
        server.execution.run_workflow(guest, "ghost")
    assert err.value.status == 404


def test_resource_handshake(server, guest):
    manifest = [{"name": "data.txt", "digest": "a" * 64}]
    missing = server.execution.check_resources(manifest)["missing"]
    assert missing == ["data.txt"]
    uploaded = server.execution.upload_resource(b"hello".hex())
    manifest2 = [{"name": "data.txt", "digest": uploaded["digest"]}]
    assert server.execution.check_resources(manifest2)["missing"] == []


def test_run_with_missing_resources_rejected(server, guest):
    server.registry.register_workflow(guest, WF_SOURCE, "wf")
    with pytest.raises(ServiceError) as err:
        server.execution.run_workflow(
            guest, "wf", resources=[{"name": "f.txt", "digest": "b" * 64}]
        )
    assert err.value.status == 428


# -- search-index caching -------------------------------------------------------


def test_search_cache_invalidated_on_registration(server, guest):
    server.registry.register_pe(guest, ISPRIME_PE)
    first = server.registry.semantic_search("prime numbers")
    assert first[0]["peName"] == "IsPrime"
    # register a better match: the cache must pick it up immediately
    server.registry.register_pe(guest, ANOMALY_PE)
    results = server.registry.semantic_search("detect anomalies in records")
    assert any(r["peName"] == "AnomalyDetectionPE" for r in results)


def test_search_cache_invalidated_on_removal(server, guest):
    server.registry.register_pe(guest, ISPRIME_PE)
    server.registry.register_pe(guest, ANOMALY_PE)
    server.registry.semantic_search("prime")  # warm the cache
    server.registry.remove_pe("IsPrime")
    names = {r["peName"] for r in server.registry.semantic_search("prime")}
    assert "IsPrime" not in names


def test_code_cache_invalidated_on_update(server, guest):
    pe = server.registry.register_pe(guest, ISPRIME_PE)
    server.registry.code_recommendation("num % 2", threshold=0.0)  # warm
    server.registry.update_pe_description(pe.peId, "entirely new words")
    hits = server.registry.code_recommendation("num % 2", threshold=0.0)
    match = next(h for h in hits if h["peName"] == "IsPrime")
    assert match["description"] == "entirely new words"


def test_cached_search_is_faster_than_cold(server, guest):
    import time as _t

    for i in range(60):
        server.registry.register_pe(
            guest,
            f"class Cached{i}(IterativePE):\n"
            f'    """PE number {i} doing arithmetic."""\n'
            f"    def _process(self, x):\n        return x + {i}\n",
        )
    t0 = _t.perf_counter()
    server.registry.semantic_search("arithmetic")
    cold = _t.perf_counter() - t0
    t0 = _t.perf_counter()
    server.registry.semantic_search("arithmetic")
    warm = _t.perf_counter() - t0
    assert warm < cold


# -- code completion -----------------------------------------------------------


def test_code_completion_returns_continuation(server, guest):
    server.registry.register_pe(guest, ISPRIME_PE)
    partial = "class IsPrime(IterativePE):\n    def _process(self, num):"
    hits = server.registry.code_completion(partial)
    assert hits and hits[0]["peName"] == "IsPrime"
    completion = hits[0]["completion"]
    # the suggestion is the code AFTER what the developer already typed
    assert "return num" in completion
    assert "class IsPrime" not in completion


def test_code_completion_skips_fully_typed_matches(server, guest):
    server.registry.register_pe(guest, ISPRIME_PE)
    full = server.registry.get_pe("IsPrime").peCode
    hits = server.registry.code_completion(full)
    # nothing left to suggest from the identical PE
    assert all(h["peName"] != "IsPrime" or h["completion"] for h in hits)


def test_code_completion_llm_mode(server, guest):
    server.registry.register_pe(guest, ISPRIME_PE)
    hits = server.registry.code_completion(
        "class IsPrime(IterativePE):", embedding_type="llm"
    )
    assert isinstance(hits, list)


def test_code_completion_empty_registry(server):
    assert server.registry.code_completion("def f():") == []
