"""Unit tests for the feature vocabulary and sparse vectorisation."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aroma.vocab import FeatureVocabulary


def test_vocab_grows_until_frozen():
    vocab = FeatureVocabulary()
    assert vocab.index_of("a") == 0
    assert vocab.index_of("b") == 1
    assert vocab.index_of("a") == 0  # stable
    assert len(vocab) == 2
    vocab.freeze()
    assert vocab.index_of("c") is None
    assert len(vocab) == 2


def test_contains():
    vocab = FeatureVocabulary()
    vocab.index_of("x")
    assert "x" in vocab
    assert "y" not in vocab


def test_vectorize_binary_vs_counts():
    vocab = FeatureVocabulary()
    features = Counter({"a": 3, "b": 1})
    binary = vocab.vectorize(features, binary=True)
    counts = vocab.vectorize(features, binary=False)
    assert binary.toarray().tolist() == [[1.0, 1.0]]
    assert counts.toarray().tolist() == [[3.0, 1.0]]


def test_vectorize_accepts_iterables():
    vocab = FeatureVocabulary()
    row = vocab.vectorize(["a", "a", "b"], binary=False)
    assert row.toarray().tolist() == [[2.0, 1.0]]


def test_vectorize_drops_oov_when_frozen():
    vocab = FeatureVocabulary()
    vocab.index_of("known")
    vocab.freeze()
    row = vocab.vectorize(Counter({"known": 1, "unknown": 5}))
    assert row.sum() == 1.0


def test_matrix_stacks_rows():
    vocab = FeatureVocabulary()
    matrix = vocab.matrix([Counter({"a": 1}), Counter({"b": 2, "a": 1})], binary=False)
    dense = matrix.toarray()
    assert dense.shape == (2, 2)
    np.testing.assert_array_equal(dense, [[1.0, 0.0], [1.0, 2.0]])


def test_matrix_empty_counters():
    vocab = FeatureVocabulary()
    matrix = vocab.matrix([Counter(), Counter()])
    assert matrix.shape[0] == 2
    assert matrix.nnz == 0


def test_overlap_via_matmul_matches_set_intersection():
    """The sparse product D @ q must equal |F(d) ∩ F(q)| per row."""
    docs = [Counter({"a": 2, "b": 1}), Counter({"b": 1, "c": 4}), Counter({"d": 1})]
    vocab = FeatureVocabulary()
    matrix = vocab.matrix(docs, binary=True)
    vocab.freeze()
    query = Counter({"b": 9, "c": 1, "zzz": 1})
    q = vocab.vectorize(query, binary=True)
    overlap = (matrix @ q.T).toarray().ravel()
    expected = [len(set(d) & set(query)) for d in docs]
    assert overlap.tolist() == [float(e) for e in expected]


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.dictionaries(
            st.text(alphabet="abcdef", min_size=1, max_size=3),
            st.integers(1, 5),
            max_size=8,
        ),
        min_size=1,
        max_size=6,
    )
)
def test_matrix_row_sums_match_counters(counters):
    vocab = FeatureVocabulary()
    matrix = vocab.matrix([Counter(c) for c in counters], binary=False)
    sums = matrix.sum(axis=1).A1
    for row_sum, counter in zip(sums, counters):
        assert row_sum == sum(counter.values())
