"""Tests for the sequential mapping and input normalization."""

import pytest

from repro.d4py import WorkflowGraph, run_graph
from repro.d4py.mappings.base import normalize_inputs, partition_processes

from tests.helpers import (
    AddOne,
    Collect,
    Double,
    IsPrime,
    KeyedCount,
    RangeProducer,
    WordSplit,
    isprime_graph,
    pipeline,
)


def test_linear_pipeline_results_in_order():
    graph = pipeline(RangeProducer("src"), Double("dbl"), AddOne("inc"))
    result = run_graph(graph, input=5)
    assert result.output_for("inc") == [1, 3, 5, 7, 9]


def test_input_as_list_of_values():
    graph = pipeline(RangeProducer("src"), Double("dbl"))
    # list input to a producer binds to '_data'; RangeProducer ignores it,
    # producing one value per invocation.
    result = run_graph(graph, input=[None, None, None])
    assert result.output_for("dbl") == [0, 2, 4]


def test_input_dict_addresses_roots_by_name():
    g = WorkflowGraph()
    a, b = RangeProducer("a"), RangeProducer("b", start=100)
    sink_a, sink_b = Double("da"), Double("db")
    g.connect(a, "output", sink_a, "input")
    g.connect(b, "output", sink_b, "input")
    result = run_graph(g, input={"a": 2, "b": 3})
    assert result.output_for("da") == [0, 2]
    assert result.output_for("db") == [200, 202, 204]


def test_input_dict_unknown_root_raises():
    graph = pipeline(RangeProducer("src"), Double("dbl"))
    with pytest.raises(KeyError, match="unknown root"):
        run_graph(graph, input={"nope": 3})


def test_negative_iterations_rejected():
    graph = pipeline(RangeProducer("src"))
    with pytest.raises(ValueError, match=">= 0"):
        run_graph(graph, input=-1)


def test_bool_input_rejected():
    graph = pipeline(RangeProducer("src"))
    with pytest.raises(TypeError, match="bool"):
        run_graph(graph, input=True)


def test_zero_iterations_produce_nothing():
    graph = pipeline(RangeProducer("src"), Double("dbl"))
    result = run_graph(graph, input=0)
    assert result.all_outputs() == []


def test_no_roots_raises():
    with pytest.raises(ValueError, match="no root"):
        run_graph(WorkflowGraph(), input=1)


def test_isprime_workflow_outputs_primes():
    result = run_graph(isprime_graph(), input=50)
    primes = result.output_for("IsPrime")
    assert primes, "expected at least one prime among 50 random numbers"
    for p in primes:
        assert p > 1 and all(p % i for i in range(2, p))


def test_iterations_counted_per_instance():
    graph = pipeline(RangeProducer("src"), Double("dbl"))
    result = run_graph(graph, input=7)
    assert result.iterations["src0"] == 7
    assert result.iterations["dbl0"] == 7


def test_stateful_pe_keeps_state_sequentially():
    source = RangeProducer("src")
    counter = KeyedCount("count")
    g = WorkflowGraph()

    class Tag(Double):
        def _process(self, value):
            return ("even" if value % 2 == 0 else "odd", value)

    tag = Tag("tag")
    g.connect(source, "output", tag, "input")
    g.connect(tag, "output", counter, "input")
    result = run_graph(g, input=6)
    counts = dict(result.output_for("count")[-2:])
    # 6 items: 3 even, 3 odd; final running counts must both be 3.
    assert counts == {"even": 3, "odd": 3}


def test_wordcount_fan_out():
    from repro.d4py.core import pes_from_iterable

    src = pes_from_iterable(["the quick fox", "the lazy dog"], name="lines")
    split = WordSplit("split")
    count = KeyedCount("count")
    g = WorkflowGraph()
    g.connect(src, "output", split, "input")
    g.connect(split, "output", count, "input")
    result = run_graph(g, input=2)
    finals = {}
    for word, n in result.output_for("count"):
        finals[word] = n
    assert finals["the"] == 2
    assert finals["fox"] == 1


def test_preprocess_postprocess_called():
    calls = []

    class Hooked(Double):
        def preprocess(self):
            calls.append("pre")

        def postprocess(self):
            calls.append("post")

    graph = pipeline(RangeProducer("src"), Hooked("h"))
    run_graph(graph, input=1)
    assert calls == ["pre", "post"]


def test_diamond_topology():
    g = WorkflowGraph()
    src = RangeProducer("src")
    left, right = Double("left"), AddOne("right")
    sink = Collect("sink")
    g.connect(src, "output", left, "input")
    g.connect(src, "output", right, "input")
    g.connect(left, "output", sink, "input")
    g.connect(right, "output", sink, "input")
    result = run_graph(g, input=3)
    got = [line for line in result.logs if "got" in line]
    assert len(got) == 6  # 3 via each branch


# -- normalize_inputs / partition_processes unit tests ----------------------


def test_normalize_int_spec():
    graph = pipeline(RangeProducer("src"))
    spec = normalize_inputs(graph, 3)
    (invocations,) = spec.values()
    assert invocations == [{}, {}, {}]


def test_normalize_dict_spec_fills_unnamed_roots():
    g = WorkflowGraph()
    a, b = RangeProducer("a"), RangeProducer("b")
    g.connect(a, "output", Double("da"), "input")
    g.connect(b, "output", Double("db"), "input")
    spec = normalize_inputs(g, {"a": 2})
    assert len(spec[a]) == 2
    assert spec[b] == [{}]


def test_normalize_scalar_to_iterative_first_input():
    graph = pipeline(Double("d"))
    spec = normalize_inputs(graph, [10, 20])
    assert spec[graph.get_pe("d")] == [{"input": 10}, {"input": 20}]


def test_partition_matches_paper_fig5b():
    """9 processes over producer+2 PEs -> ranges (0,1), (1,5), (5,9)."""
    graph = pipeline(RangeProducer("NumberProducer"), IsPrime("IsPrime"), Collect("PrintPrime"))
    partition = partition_processes(graph, 9)
    assert partition == {
        "NumberProducer": range(0, 1),
        "IsPrime": range(1, 5),
        "PrintPrime": range(5, 9),
    }


def test_partition_respects_explicit_numprocesses():
    graph = pipeline(RangeProducer("src"), Double("d"), Collect("sink"))
    graph.get_pe("d").numprocesses = 3
    partition = partition_processes(graph, 5)
    assert partition["d"] == range(1, 4)
    assert partition["sink"] == range(4, 5)


def test_partition_with_too_few_processes_gives_one_each():
    graph = pipeline(RangeProducer("src"), Double("d"), Collect("sink"))
    partition = partition_processes(graph, 2)
    assert all(len(r) == 1 for r in partition.values())


def test_partition_empty_graph_raises():
    with pytest.raises(ValueError, match="empty"):
        partition_processes(WorkflowGraph(), 4)


def test_unknown_mapping_rejected():
    graph = pipeline(RangeProducer("src"))
    with pytest.raises(ValueError, match="unknown mapping"):
        run_graph(graph, mapping="banana")


def test_timings_recorded_per_instance():
    import time as _t

    class Slow(Double):
        def _process(self, value):
            _t.sleep(0.01)
            return value

    graph = pipeline(RangeProducer("src"), Slow("slow"))
    result = run_graph(graph, input=5)
    assert result.timings["slow0"] >= 0.05
    assert result.timings["src0"] < result.timings["slow0"]
    assert result.hotspot() == "slow0"


def test_hotspot_none_when_no_timings():
    from repro.d4py.mappings.base import RunResult

    assert RunResult().hotspot() is None
