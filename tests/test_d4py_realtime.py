"""Tests for live stream ingestion (repro.d4py.realtime)."""

import threading
import time

import pytest

from repro.d4py import WorkflowGraph
from repro.d4py.realtime import StreamSession

from tests.helpers import AddOne, Double, KeyedCount, RangeProducer, pipeline


def entry_graph():
    """dbl -> inc, entry at dbl.input."""
    g = WorkflowGraph()
    d, a = Double("dbl"), AddOne("inc")
    g.connect(d, "output", a, "input")
    return g


def test_push_and_stop_collects_results():
    session = StreamSession(entry_graph()).start()
    for i in range(10):
        session.push(i)
    result = session.stop()
    assert sorted(result.output_for("inc")) == [i * 2 + 1 for i in range(10)]
    assert session.pushed == 10


def test_context_manager():
    with StreamSession(entry_graph()) as session:
        session.push_many(range(5))
    # __exit__ stopped it; results are final
    assert sorted(session.results_so_far()["inc.output"]) == [1, 3, 5, 7, 9]


def test_results_visible_while_running():
    session = StreamSession(entry_graph()).start()
    session.push(1)
    deadline = time.monotonic() + 10
    while not session.results_so_far().get("inc.output"):
        assert time.monotonic() < deadline, "no live result within 10s"
        time.sleep(0.01)
    assert session.results_so_far()["inc.output"] == [3]
    session.stop()


def test_concurrent_pushers():
    session = StreamSession(entry_graph(), max_workers=4).start()

    def feed(base):
        for i in range(25):
            session.push(base + i)

    threads = [threading.Thread(target=feed, args=(j * 100,)) for j in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    result = session.stop()
    assert len(result.output_for("inc")) == 100


def test_keyed_state_in_streaming_mode():
    g = WorkflowGraph()
    count = KeyedCount("count")
    g.add(count)
    session = StreamSession(g, instances_per_pe=3).start()
    for i in range(30):
        session.push((i % 3, i))
    result = session.stop()
    finals = {}
    for key, n in result.output_for("count"):
        finals[key] = max(finals.get(key, 0), n)
    assert finals == {0: 10, 1: 10, 2: 10}


def test_producer_roots_rejected():
    with pytest.raises(ValueError, match="producer"):
        StreamSession(pipeline(RangeProducer("src"), Double("dbl")))


def test_push_before_start_rejected():
    session = StreamSession(entry_graph())
    with pytest.raises(RuntimeError):
        session.push(1)


def test_push_after_stop_rejected():
    session = StreamSession(entry_graph()).start()
    session.stop()
    with pytest.raises(RuntimeError):
        session.push(1)


def test_stop_is_idempotent():
    session = StreamSession(entry_graph()).start()
    session.push(1)
    first = session.stop()
    second = session.stop()
    assert first is second


def test_pending_drains_to_zero():
    session = StreamSession(entry_graph()).start()
    session.push_many(range(20))
    session.stop()
    assert session.pending() == 0


def test_worker_error_propagates_on_stop():
    class Boom(Double):
        def _process(self, value):
            raise ValueError("stream boom")

    g = WorkflowGraph()
    g.add(Boom("boom"))
    session = StreamSession(g).start()
    session.push(1)
    with pytest.raises(RuntimeError, match="stream session failures"):
        session.stop()
