"""Tests for the asynchronous job subsystem (repro.laminar.jobs).

Covers the full lifecycle — happy path, retry-then-succeed, timeout,
mid-run cancellation, queue-full rejection — at three levels: the
JobManager directly, the assembled server's actions, and end-to-end over
the TCP transport via the client/CLI verbs.  Includes the acceptance
scenario: 20 concurrently submitted jobs against a 4-worker pool all
reaching terminal states.
"""

from __future__ import annotations

import io
import threading
import time

import pytest

from repro.laminar.client.cli import LaminarCLI
from repro.laminar.client.client import ClientError, LaminarClient
from repro.laminar.execution.engine import ExecutionEngine
from repro.laminar.jobs import (
    InvalidTransition,
    Job,
    JobManager,
    JobQueue,
    JobSpec,
    JobState,
    QueueFull,
    TERMINAL_STATES,
    UnknownJob,
)
from repro.laminar.jobs.model import is_transient_error
from repro.laminar.server.app import LaminarServer
from repro.laminar.transport.tcp import TcpServerTransport

# -- workflow sources ---------------------------------------------------------

QUICK_WF = """
class Producer(ProducerPE):
    def _process(self, inputs):
        return 10
class AddOne(IterativePE):
    def _process(self, value):
        print("adding to", value)
        return value + 1
graph = WorkflowGraph()
graph.connect(Producer("P"), "output", AddOne("A"), "input")
"""

SLEEPER_WF = """
import time
class Sleeper(ProducerPE):
    def _process(self, inputs):
        time.sleep(5.0)
        return 1
graph = WorkflowGraph()
graph.add(Sleeper("S"))
"""

BOOM_WF = """
class Boom(ProducerPE):
    def _process(self, inputs):
        raise ValueError("logic error: never retry this")
graph = WorkflowGraph()
graph.add(Boom("B"))
"""


def flaky_wf(flag_path: str, failures: int = 1) -> str:
    """A workflow that raises ConnectionError its first ``failures`` runs.

    Attempt counting persists across retries through a file, since every
    attempt executes in a fresh namespace.
    """
    return f"""
import os
class Flaky(ProducerPE):
    def _process(self, inputs):
        path = {flag_path!r}
        seen = int(open(path).read()) if os.path.exists(path) else 0
        if seen < {failures}:
            open(path, "w").write(str(seen + 1))
            raise ConnectionError("transient broker hiccup")
        return 42
graph = WorkflowGraph()
graph.add(Flaky("F"))
"""


@pytest.fixture
def manager():
    mgr = JobManager(engine=ExecutionEngine(), workers=2, queue_capacity=8)
    yield mgr
    mgr.shutdown(wait=True)


def submit(mgr: JobManager, code: str, **kwargs) -> Job:
    return mgr.submit(JobSpec(workflow_code=code, **kwargs))


# -- state machine ------------------------------------------------------------

def test_state_machine_legal_edges():
    job = Job(job_id=1, spec=JobSpec(workflow_code=""))
    assert job.state is JobState.QUEUED
    assert job.try_transition(JobState.RUNNING)
    assert job.try_transition(JobState.QUEUED)  # retry requeue
    assert job.try_transition(JobState.RUNNING)
    assert job.try_transition(JobState.SUCCEEDED)
    assert job.terminal


def test_state_machine_rejects_illegal_edges():
    job = Job(job_id=1, spec=JobSpec(workflow_code=""))
    assert not job.try_transition(JobState.SUCCEEDED)  # QUEUED can't finish
    job.transition(JobState.RUNNING)
    job.transition(JobState.TIMED_OUT)
    for state in JobState:  # terminal states are absorbing
        assert not job.try_transition(state)
    with pytest.raises(InvalidTransition):
        job.transition(JobState.RUNNING)


def test_transient_error_classification():
    assert is_transient_error("ConnectionError: broker reset")
    assert is_transient_error("x\nBrokenPipeError\n")
    assert not is_transient_error("ValueError: bad input")
    assert not is_transient_error(None)
    assert not is_transient_error("")


# -- queue --------------------------------------------------------------------

def test_queue_orders_by_priority_then_fifo():
    q = JobQueue(capacity=8)
    jobs = {
        name: Job(job_id=i, spec=JobSpec(workflow_code="", priority=prio))
        for i, (name, prio) in enumerate(
            [("low", 0), ("high", 5), ("mid", 1), ("high2", 5)]
        )
    }
    for job in jobs.values():
        q.put(job)
    order = [q.get(timeout=0.1).job_id for _ in range(4)]
    # Both priority-5 jobs first (submission order preserved between them).
    assert order == [jobs["high"].job_id, jobs["high2"].job_id,
                     jobs["mid"].job_id, jobs["low"].job_id]


def test_queue_rejects_when_full():
    q = JobQueue(capacity=2)
    q.put(Job(job_id=1, spec=JobSpec(workflow_code="")))
    q.put(Job(job_id=2, spec=JobSpec(workflow_code="")))
    with pytest.raises(QueueFull):
        q.put(Job(job_id=3, spec=JobSpec(workflow_code="")))
    assert q.stats()["rejected"] == 1


def test_queue_discard_skips_cancelled_jobs():
    q = JobQueue(capacity=4)
    first = Job(job_id=1, spec=JobSpec(workflow_code=""))
    second = Job(job_id=2, spec=JobSpec(workflow_code=""))
    q.put(first)
    q.put(second)
    q.discard(first.job_id)
    assert q.get(timeout=0.1) is second
    assert q.get(timeout=0.05) is None


# -- manager lifecycle --------------------------------------------------------

def test_job_happy_path(manager):
    job = submit(manager, QUICK_WF, workflow_name="quick")
    done = manager.wait(job.job_id, timeout=30)
    assert done.state is JobState.SUCCEEDED
    assert done.attempts == 1
    assert done.result["outputs"] == {"A.output": [11]}
    assert "adding to 10" in done.logs
    assert done.error is None
    public = done.to_public(include_result=True)
    assert public["state"] == "SUCCEEDED"
    assert public["result"]["status"] == "success"


def test_job_retry_then_succeed(manager, tmp_path):
    code = flaky_wf(str(tmp_path / "flag"), failures=1)
    job = submit(manager, code, max_retries=2, retry_backoff=0.01)
    done = manager.wait(job.job_id, timeout=30)
    assert done.state is JobState.SUCCEEDED
    assert done.attempts == 2  # one transient failure, one success
    assert done.retries == 1
    assert done.result["outputs"] == {"F.output": [42]}


def test_job_retry_budget_exhausted(manager, tmp_path):
    code = flaky_wf(str(tmp_path / "flag"), failures=10)
    job = submit(manager, code, max_retries=2, retry_backoff=0.01)
    done = manager.wait(job.job_id, timeout=30)
    assert done.state is JobState.FAILED
    assert done.attempts == 3  # initial + 2 retries
    assert "ConnectionError" in done.error


def test_job_non_transient_error_never_retries(manager):
    job = submit(manager, BOOM_WF, max_retries=5)
    done = manager.wait(job.job_id, timeout=30)
    assert done.state is JobState.FAILED
    assert done.attempts == 1
    assert "ValueError" in done.error


def test_job_timeout_lands_timed_out(manager):
    job = submit(manager, SLEEPER_WF, timeout=0.3)
    started = time.monotonic()
    done = manager.wait(job.job_id, timeout=30)
    assert done.state is JobState.TIMED_OUT
    assert time.monotonic() - started < 4.0  # well before the 5s sleep ends
    assert "exceeded its 0.3s timeout" in done.error


def test_job_cancel_while_running(manager):
    job = submit(manager, SLEEPER_WF)
    deadline = time.monotonic() + 10
    while job.state is JobState.QUEUED and time.monotonic() < deadline:
        time.sleep(0.01)
    assert job.state is JobState.RUNNING
    manager.cancel(job.job_id)
    done = manager.wait(job.job_id, timeout=30)
    assert done.state is JobState.CANCELLED
    with pytest.raises(InvalidTransition):
        manager.cancel(job.job_id)  # already terminal


def test_job_cancel_while_queued():
    # No workers: the job can never be picked up.
    manager = JobManager(engine=ExecutionEngine(), workers=1, start=False)
    try:
        job = submit(manager, QUICK_WF)
        assert job.state is JobState.QUEUED
        manager.cancel(job.job_id)
        assert job.state is JobState.CANCELLED
        assert manager.queue.depth == 0 or manager.queue.get(0.05) is None
    finally:
        manager.shutdown(wait=True)


def test_queue_full_rejection_and_backpressure():
    manager = JobManager(engine=ExecutionEngine(), workers=1, queue_capacity=2)
    try:
        blocker = submit(manager, SLEEPER_WF)  # occupies the only worker
        deadline = time.monotonic() + 10
        while blocker.state is JobState.QUEUED and time.monotonic() < deadline:
            time.sleep(0.01)
        submit(manager, QUICK_WF)
        submit(manager, QUICK_WF)
        with pytest.raises(QueueFull) as excinfo:
            submit(manager, QUICK_WF)
        assert "retry after" in str(excinfo.value)
        assert manager.queue.stats()["rejected"] >= 1
        # Backpressure clears once the queue drains: cancel the blocker.
        manager.cancel(blocker.job_id)
        for queued in manager.list_jobs(state=JobState.QUEUED):
            manager.wait(queued["jobId"], timeout=30)
        accepted = submit(manager, QUICK_WF)
        assert manager.wait(accepted.job_id, timeout=30).state is JobState.SUCCEEDED
    finally:
        manager.shutdown(wait=True)


def test_unknown_job_raises(manager):
    with pytest.raises(UnknownJob):
        manager.status(999)


def test_default_timeout_applies(manager):
    manager.default_timeout = 0.25
    job = submit(manager, SLEEPER_WF)
    assert job.spec.timeout == 0.25
    assert manager.wait(job.job_id, timeout=30).state is JobState.TIMED_OUT


# -- acceptance: 20 concurrent jobs on a 4-worker pool ------------------------

def test_twenty_concurrent_jobs_reach_terminal_states(tmp_path):
    manager = JobManager(engine=ExecutionEngine(), workers=4, queue_capacity=32)
    try:
        specs = []
        for i in range(13):
            specs.append(("ok", JobSpec(workflow_code=QUICK_WF)))
        for i in range(3):
            flag = str(tmp_path / f"flaky-{i}")
            specs.append(
                (
                    "flaky",
                    JobSpec(
                        workflow_code=flaky_wf(flag, failures=1),
                        max_retries=2,
                        retry_backoff=0.01,
                    ),
                )
            )
        for i in range(2):
            specs.append(("slow", JobSpec(workflow_code=SLEEPER_WF, timeout=0.4)))
        for i in range(2):
            specs.append(("victim", JobSpec(workflow_code=SLEEPER_WF)))
        assert len(specs) == 20

        jobs: dict[int, tuple[str, Job]] = {}
        lock = threading.Lock()

        def worker(kind: str, spec: JobSpec) -> None:
            job = manager.submit(spec)
            with lock:
                jobs[job.job_id] = (kind, job)

        threads = [
            threading.Thread(target=worker, args=item) for item in specs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(jobs) == 20

        for job_id, (kind, job) in jobs.items():
            if kind == "victim":
                manager.cancel(job_id)
        for job_id in jobs:
            manager.wait(job_id, timeout=60)

        by_kind: dict[str, list[Job]] = {}
        for kind, job in jobs.values():
            by_kind.setdefault(kind, []).append(job)

        assert all(j.state in TERMINAL_STATES for _, j in jobs.values())
        assert all(j.state is JobState.SUCCEEDED for j in by_kind["ok"])
        for job in by_kind["flaky"]:
            assert job.state is JobState.SUCCEEDED
            assert job.attempts == 2
        assert all(j.state is JobState.TIMED_OUT for j in by_kind["slow"])
        assert all(j.state is JobState.CANCELLED for j in by_kind["victim"])

        stats = manager.stats()
        assert stats["workers"]["size"] == 4
        assert sum(stats["completed"].values()) == 20
        assert stats["retries"] == 3
        assert stats["queue"]["depth"] == 0
    finally:
        manager.shutdown(wait=True)


# -- server actions -----------------------------------------------------------

def test_server_job_actions_and_persistence():
    server = LaminarServer()
    try:
        server.handle(
            {"action": "register_workflow", "code": QUICK_WF, "name": "quick"}
        )
        resp = server.handle({"action": "submit_job", "id": "quick"})
        assert resp["status"] == 200
        job_id = resp["body"]["jobId"]

        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            status = server.handle({"action": "job_status", "jobId": job_id})
            if status["body"]["state"] in TERMINAL_STATES:
                break
            time.sleep(0.02)
        result = server.handle({"action": "job_result", "jobId": job_id})
        assert result["body"]["state"] == "SUCCEEDED"
        assert result["body"]["result"]["outputs"] == {"A.output": [11]}

        logs = server.handle({"action": "job_logs", "jobId": job_id})
        assert logs["body"]["lines"] == ["adding to 10"]

        # The lifecycle is persisted in the registry database.
        row = server.job_rows.get(job_id)
        assert row.state == "SUCCEEDED"
        assert row.attempts == 1
        assert row.outcome()["outputs"] == {"A.output": [11]}
        assert "adding to 10" in row.logLines

        stats = server.handle({"action": "stats"})["body"]["jobs"]
        assert stats["finished"] == {"SUCCEEDED": 1}

        assert server.handle({"action": "job_status", "jobId": 999})["status"] == 404
        assert (
            server.handle({"action": "submit_job", "id": "missing"})["status"] == 404
        )
    finally:
        server.close()


def test_server_queue_full_maps_to_429():
    server = LaminarServer(job_workers=1, job_queue_capacity=1)
    try:
        server.handle(
            {"action": "register_workflow", "code": SLEEPER_WF, "name": "sleepy"}
        )
        first = server.handle({"action": "submit_job", "id": "sleepy"})["body"]
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            state = server.handle(
                {"action": "job_status", "jobId": first["jobId"]}
            )["body"]["state"]
            if state == "RUNNING":
                break
            time.sleep(0.01)
        server.handle({"action": "submit_job", "id": "sleepy"})  # fills the queue
        rejected = server.handle({"action": "submit_job", "id": "sleepy"})
        assert rejected["status"] == 429
        assert "retry after" in rejected["body"]["error"]
    finally:
        server.close()


def test_server_result_conflict_while_running_and_cancel():
    server = LaminarServer()
    try:
        server.handle(
            {"action": "register_workflow", "code": SLEEPER_WF, "name": "sleepy"}
        )
        job_id = server.handle({"action": "submit_job", "id": "sleepy"})["body"][
            "jobId"
        ]
        conflict = server.handle({"action": "job_result", "jobId": job_id})
        assert conflict["status"] == 409
        cancelled = server.handle({"action": "cancel_job", "jobId": job_id})
        assert cancelled["body"]["state"] == "CANCELLED"
        assert server.handle({"action": "cancel_job", "jobId": job_id})["status"] == 409
        listing = server.handle({"action": "list_jobs", "state": "cancelled"})
        assert [job["jobId"] for job in listing["body"]] == [job_id]
        assert server.handle({"action": "list_jobs", "state": "nope"})["status"] == 400
    finally:
        server.close()


# -- end-to-end over TCP via client and CLI verbs -----------------------------

def test_jobs_end_to_end_over_tcp(tmp_path):
    server = LaminarServer(job_workers=2, job_queue_capacity=8)
    transport = TcpServerTransport(server).start()
    host, port = transport.address
    client = LaminarClient.connect(host, port)
    try:
        client.register_Workflow(QUICK_WF, name="quick")
        client.register_Workflow(
            flaky_wf(str(tmp_path / "flag"), failures=1), name="flaky"
        )

        job = client.submit_Job("quick")
        assert job["state"] in ("QUEUED", "RUNNING")
        result = client.wait_For_Job(job["jobId"], timeout=30)
        assert result["state"] == "SUCCEEDED"
        assert result["result"]["outputs"] == {"A.output": [11]}
        assert client.job_Logs(job["jobId"])["lines"] == ["adding to 10"]

        retried = client.submit_Job("flaky", max_retries=2)
        result = client.wait_For_Job(retried["jobId"], timeout=30)
        assert result["state"] == "SUCCEEDED"
        assert result["attempts"] == 2

        with pytest.raises(ClientError) as excinfo:
            client.job_Status(12345)
        assert excinfo.value.status == 404

        states = {j["jobId"]: j["state"] for j in client.list_Jobs()}
        assert states == {job["jobId"]: "SUCCEEDED", retried["jobId"]: "SUCCEEDED"}

        out = io.StringIO()
        cli = LaminarCLI(client, stdout=out)
        cli.onecmd("submit quick --wait")
        cli.onecmd(f"status {job['jobId']}")
        cli.onecmd("jobs")
        cli.onecmd(f"result {job['jobId']}")
        cli.onecmd("cancel 12345")
        text = out.getvalue()
        assert "SUCCEEDED" in text
        assert "A.output: [11]" in text
        assert f"job {job['jobId']} SUCCEEDED" in text
        assert "error: [404]" in text
    finally:
        client.close()
        transport.stop()
        server.close()
