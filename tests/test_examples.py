"""Smoke tests: every shipped example must run cleanly end to end.

Examples are the repository's living documentation; these tests execute
each script in a subprocess and check the markers its narrative promises,
so a regression that breaks the user-facing flows fails the suite.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: (script, timeout seconds, substrings the output must contain)
CASES = [
    ("quickstart.py", 240, ["registering isprime_wf", "code recommendation", "NumberProducer"]),
    ("sensor_anomaly_pipeline.py", 240, ["simple", "multi", "dynamic", "alerts"]),
    ("wordcount_streaming.py", 240, ["all mappings agree"]),
    ("market_window_analytics.py", 240, ["stream totals match batch ground truth"]),
    ("client_server_tcp.py", 240, ["second run uploaded 0", "arrived at"]),
    ("code_recommendation.py", 300, ["structural recommendation", "MovingAverage"]),
    ("provenance_audit.py", 120, ["flagged items", "hotspot PE", "Samples.output"]),
    ("live_stream_ingestion.py", 180, ["live:", "all 200 live ticks accounted for"]),
]


@pytest.mark.parametrize("script,timeout,markers", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, timeout, markers):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} missing"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, (
        f"{script} exited {proc.returncode}\nstdout:\n{proc.stdout[-2000:]}"
        f"\nstderr:\n{proc.stderr[-2000:]}"
    )
    for marker in markers:
        assert marker in proc.stdout, f"{script}: missing {marker!r} in output"
