"""Tests for the CodeT5 substitute description generator."""

import pytest

from repro.models.describer import CodeT5Describer, DescriptionContext

ISPRIME = '''
class IsPrime(IterativePE):
    """Checks whether a given number is prime and returns the number if it is."""

    def __init__(self):
        IterativePE.__init__(self)

    def _process(self, num):
        if all(num % i != 0 for i in range(2, num)):
            return num
'''

NO_DOCSTRING = """
class AnomalyDetector(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)

    def detect_anomaly(self, reading):
        return abs(reading - self.mean) > self.threshold

    def _process(self, record):
        if self.detect_anomaly(record["temperature"]):
            return record
"""


@pytest.fixture(scope="module")
def describer():
    return CodeT5Describer()


def test_full_class_uses_docstring(describer):
    desc = describer.describe(ISPRIME)
    assert "prime" in desc.lower()
    assert desc.startswith("Checks whether a given number is prime")


def test_full_class_mentions_class_name(describer):
    desc = describer.describe(NO_DOCSTRING)
    assert "anomaly" in desc.lower()


def test_process_only_has_no_class_name(describer):
    desc = describer.describe(NO_DOCSTRING, DescriptionContext.PROCESS_ONLY)
    # _process body references detect_anomaly and temperature, but the
    # class identity is invisible.
    assert "detector class" not in desc.lower()


def test_process_only_is_less_specific_than_full(describer):
    """The paper's Fig 10 claim: full-class context -> richer descriptions."""
    full = set(describer.describe(ISPRIME).lower().split())
    proc = set(
        describer.describe(ISPRIME, DescriptionContext.PROCESS_ONLY).lower().split()
    )
    reference = {"checks", "whether", "number", "prime", "returns"}
    assert len(full & reference) > len(proc & reference)


def test_method_verb_phrases(describer):
    desc = describer.describe(NO_DOCSTRING)
    assert "detects anomaly" in desc.lower()


def test_bare_function(describer):
    desc = describer.describe("def compute_average(values):\n    return sum(values)/len(values)")
    assert "computes average" in desc.lower()


def test_invalid_source_falls_back(describer):
    assert describer.describe("%%% not python %%%") == "A processing element."


def test_deterministic(describer):
    assert describer.describe(ISPRIME) == describer.describe(ISPRIME)


def test_workflow_description_names_workflow(describer):
    desc = describer.describe_workflow("isprime_wf", [ISPRIME])
    assert desc.startswith("Workflow isprime wf")
    assert "prime" in desc.lower()


def test_workflow_description_combines_pes(describer):
    desc = describer.describe_workflow("sensor_wf", [ISPRIME, NO_DOCSTRING])
    assert "prime" in desc.lower() and "anomaly" in desc.lower()


def test_workflow_description_dedupes_clauses(describer):
    desc = describer.describe_workflow("dup_wf", [ISPRIME, ISPRIME])
    assert desc.lower().count("checks whether a given number is prime") == 1


def test_empty_workflow(describer):
    desc = describer.describe_workflow("empty_wf", [])
    assert desc == "Workflow empty wf."


def test_max_sentences_respected():
    short = CodeT5Describer(max_sentences=1)
    desc = short.describe(NO_DOCSTRING)
    assert desc.count(".") <= 2  # one sentence (allowing class-name dot)


def test_multiple_classes_first_described(describer):
    two = ISPRIME + "\n\nclass Other(IterativePE):\n    def _process(self, x):\n        return x\n"
    desc = describer.describe(two)
    assert "prime" in desc.lower()


def test_async_function(describer):
    desc = describer.describe(
        "async def fetch_records(url):\n    return await session.get(url)\n"
    )
    assert "fetches records" in desc.lower()


def test_nested_class_methods_visible(describer):
    code = """
class Outer(IterativePE):
    class Helper:
        def normalize_values(self, xs):
            return [x / max(xs) for x in xs]

    def _process(self, xs):
        return self.Helper().normalize_values(xs)
"""
    desc = describer.describe(code)
    assert "normalizes values" in desc.lower()


def test_empty_source(describer):
    assert describer.describe("") == "A processing element."


def test_description_is_prose_not_code(describer):
    desc = describer.describe(NO_DOCSTRING)
    assert "def " not in desc
    assert "self." not in desc


def test_long_docstring_only_first_line(describer):
    code = (
        "class Doc(IterativePE):\n"
        '    """First line summary.\n\n    Much longer body text that should\n'
        '    not appear in the description.\n    """\n'
        "    def _process(self, x):\n        return x\n"
    )
    desc = describer.describe(code)
    assert desc.startswith("First line summary.")
    assert "longer body" not in desc
