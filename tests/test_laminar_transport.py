"""Tests for frames and the in-process / TCP transports."""

import threading

import pytest

from repro.laminar.server.app import LaminarServer
from repro.laminar.transport import (
    Frame,
    FrameType,
    InProcessTransport,
    TcpClientTransport,
    TcpServerTransport,
)
from repro.laminar.transport.inprocess import ServerStream

WF = """
class Counter(ProducerPE):
    def _process(self, inputs):
        print("tick")
        return 1

c = Counter("Counter")
graph = WorkflowGraph()
graph.add(c)
"""


# -- frames -----------------------------------------------------------------


def test_frame_roundtrip():
    frame = Frame(3, FrameType.DATA, {"line": "hello"})
    encoded = frame.encode()
    decoded = Frame.decode(encoded[4:])
    assert decoded.stream_id == 3
    assert decoded.type is FrameType.DATA
    assert decoded.payload == {"line": "hello"}


def test_frame_read_from_file():
    import io

    buf = io.BytesIO(
        Frame(1, FrameType.HEADERS, {"a": 1}).encode()
        + Frame(1, FrameType.END, None).encode()
    )
    first = Frame.read_from(buf)
    second = Frame.read_from(buf)
    third = Frame.read_from(buf)
    assert first.type is FrameType.HEADERS
    assert second.type is FrameType.END
    assert third is None


def test_frame_read_truncated_body_raises():
    import io

    from repro.laminar.transport import FrameProtocolError

    data = Frame(1, FrameType.DATA, "x").encode()
    with pytest.raises(FrameProtocolError):
        Frame.read_from(io.BytesIO(data[:-2]))


def test_frame_read_partial_header_raises():
    import io

    from repro.laminar.transport import FrameProtocolError

    data = Frame(1, FrameType.DATA, "x").encode()
    with pytest.raises(FrameProtocolError):
        Frame.read_from(io.BytesIO(data[:3]))


# -- in-process -----------------------------------------------------------------


@pytest.fixture()
def server():
    s = LaminarServer()
    yield s
    s.close()


def test_inprocess_unary(server):
    transport = InProcessTransport(server)
    response = transport.request({"action": "ping"})
    assert response["status"] == 200
    assert response["body"]["pong"] is True


def test_inprocess_unknown_action(server):
    transport = InProcessTransport(server)
    assert transport.request({"action": "nope"})["status"] == 404


def test_inprocess_stream_frames(server):
    transport = InProcessTransport(server)
    server.registry.register_workflow(
        server.auth.resolve(None), WF, "tick_wf"
    )
    frames = list(
        transport.stream({"action": "run", "id": "tick_wf", "input": 3})
    )
    types = [f.type for f in frames]
    assert types[0] is FrameType.HEADERS
    assert types[-1] is FrameType.END
    data = [f.payload for f in frames if f.type is FrameType.DATA]
    assert data == ["tick", "tick", "tick"]
    assert frames[-1].payload["status"] == "success"


def test_inprocess_unary_drains_stream(server):
    transport = InProcessTransport(server)
    server.registry.register_workflow(server.auth.resolve(None), WF, "wf2")
    response = transport.request({"action": "run", "id": "wf2", "input": 2})
    assert response["status"] == 200
    assert response["body"]["lines"] == ["tick", "tick"]
    assert response["body"]["summary"]["status"] == "success"


def test_server_stream_callable_summary():
    stream = ServerStream(iter([1, 2]), summary=lambda: {"done": True})
    list(stream.chunks)
    assert stream.summary() == {"done": True}


# -- TCP ----------------------------------------------------------------------------


@pytest.fixture()
def tcp(server):
    transport = TcpServerTransport(server).start()
    host, port = transport.address
    client = TcpClientTransport(host, port)
    yield server, client
    client.close()
    transport.stop()


def test_tcp_unary(tcp):
    _server, client = tcp
    response = client.request({"action": "ping"})
    assert response["status"] == 200
    assert response["body"]["pong"] is True


def test_tcp_register_and_search(tcp):
    _server, client = tcp
    code = (
        'class AnomalyPE(IterativePE):\n'
        '    """Detects anomalies in sensor streams."""\n'
        "    def _process(self, x):\n"
        "        return x\n"
    )
    reg = client.request({"action": "register_pe", "code": code})
    assert reg["status"] == 200
    result = client.request(
        {"action": "search_semantic", "query": "detect anomalies", "kind": "pe"}
    )
    assert result["body"][0]["peName"] == "AnomalyPE"


def test_tcp_streamed_run(tcp):
    server, client = tcp
    server.registry.register_workflow(server.auth.resolve(None), WF, "tcp_wf")
    frames = list(client.stream({"action": "run", "id": "tcp_wf", "input": 4}))
    data = [f.payload for f in frames if f.type is FrameType.DATA]
    assert data == ["tick"] * 4
    assert frames[-1].type is FrameType.END


def test_tcp_parallel_clients(tcp):
    server, _client = tcp
    host, port = None, None
    # derive address from the fixture's transport via a fresh client
    results = []
    lock = threading.Lock()

    def worker():
        c = TcpClientTransport(*_client._sock.getpeername())
        try:
            r = c.request({"action": "ping"})
            with lock:
                results.append(r["status"])
        finally:
            c.close()

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert results == [200] * 6


def test_tcp_error_status_propagates(tcp):
    _server, client = tcp
    response = client.request({"action": "get_pe", "id": "missing"})
    assert response["status"] == 404


def test_frame_unicode_payload_roundtrip():
    frame = Frame(1, FrameType.DATA, {"text": "π ≈ 3.14159 — ユニコード"})
    decoded = Frame.decode(frame.encode()[4:])
    assert decoded.payload["text"] == "π ≈ 3.14159 — ユニコード"


def test_frame_large_payload_roundtrip():
    big = "x" * 500_000
    frame = Frame(7, FrameType.DATA, big)
    decoded = Frame.decode(frame.encode()[4:])
    assert decoded.payload == big


def test_frame_non_json_payload_rejected_loudly():
    from repro.laminar.transport import FramePayloadError

    with pytest.raises(FramePayloadError):
        Frame(1, FrameType.END, {"value": range(3)}).encode()
    with pytest.raises(FramePayloadError):
        Frame(1, FrameType.DATA, float("nan")).encode()


def test_error_ping_pong_frame_roundtrip():
    for ftype, payload in [
        (FrameType.ERROR, {"status": 500, "error_type": "ValueError", "error": "x"}),
        (FrameType.PING, {"ts": 1.0}),
        (FrameType.PONG, {"ts": 1.0}),
    ]:
        decoded = Frame.decode(Frame(9, ftype, payload).encode()[4:])
        assert decoded.type is ftype
        assert decoded.payload == payload


def test_tcp_large_response(tcp):
    server, client = tcp
    code = (
        "class Big(IterativePE):\n"
        '    """' + "A very long description. " * 200 + '"""\n'
        "    def _process(self, x):\n        return x\n"
    )
    response = client.request({"action": "register_pe", "code": code})
    assert response["status"] == 200
    fetched = client.request({"action": "get_pe", "id": "Big"})
    assert len(fetched["body"]["peCode"]) > 4000


def test_tcp_client_ping_roundtrip(tcp):
    _server, client = tcp
    rtt = client.ping(timeout=5.0)
    assert 0.0 <= rtt < 5.0
    assert client.pings_sent == 1
    # The connection is still good for a normal exchange afterwards.
    assert client.request({"action": "ping"})["status"] == 200


def test_inprocess_handler_exception_becomes_error(server):
    transport = InProcessTransport(server)
    original = server.handle

    def exploding(payload):
        if payload.get("action") == "explode":
            raise RuntimeError("kaboom")
        return original(payload)

    server.handle = exploding
    try:
        response = transport.request({"action": "explode"})
        assert response["status"] == 500
        assert response["body"]["error_type"] == "RuntimeError"
        assert "kaboom" in response["body"]["error"]
        frames = list(transport.stream({"action": "explode"}))
        assert frames[-1].type is FrameType.ERROR
        assert frames[-1].payload["error_type"] == "RuntimeError"
    finally:
        server.handle = original


def test_stopped_server_refuses_new_connections(server):
    transport = TcpServerTransport(server).start()
    host, port = transport.address
    transport.stop()  # listener closed; established handlers may drain
    with pytest.raises(OSError):
        TcpClientTransport(host, port, timeout=2.0)
