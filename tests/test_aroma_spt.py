"""Tests for SPT generation (repro.aroma.spt)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aroma.spt import ParseFailure, SPTLeaf, SPTNode, python_to_spt


def leaves_tokens(spt):
    return [leaf.token for leaf in spt.leaves()]


def test_simple_assignment():
    spt = python_to_spt("x = 1")
    assert "x" in leaves_tokens(spt)
    assert "<num>" in leaves_tokens(spt)


def test_variables_flagged():
    spt = python_to_spt("x = compute(y)\nprint(x)")
    flags = {leaf.token: leaf.is_variable for leaf in spt.leaves()}
    assert flags["x"] is True  # assigned -> variable
    assert flags["compute"] is False  # free name -> concrete
    assert flags["print"] is False


def test_function_params_are_variables():
    spt = python_to_spt("def f(a, b):\n    return a + b")
    flags = {leaf.token: leaf.is_variable for leaf in spt.leaves()}
    assert flags["a"] and flags["b"]
    assert flags["f"] is False  # function name kept concrete


def test_if_label_contains_keyword():
    spt = python_to_spt("if x:\n    pass\nelse:\n    pass")
    labels = collect_labels(spt)
    assert any(lab.startswith("if#:") and "else:" in lab for lab in labels)


def collect_labels(node):
    labels = [node.label]
    for child in node.children:
        if isinstance(child, SPTNode):
            labels.extend(collect_labels(child))
    return labels


def test_for_loop_label():
    spt = python_to_spt("for i in range(10):\n    total += i")
    assert any(lab.startswith("for#in#:") for lab in collect_labels(spt))


def test_string_and_number_literals_collapsed():
    spt = python_to_spt("name = 'alice'\nage = 30")
    toks = leaves_tokens(spt)
    assert "<str>" in toks and "<num>" in toks
    assert "alice" not in toks


def test_attribute_and_call():
    spt = python_to_spt("random.randint(1, 1000)")
    toks = leaves_tokens(spt)
    assert "random" in toks and "randint" in toks
    labels = collect_labels(spt)
    assert "#.#" in labels
    assert any("(" in lab and ")" in lab for lab in labels)


def test_binop_label_carries_operator():
    spt = python_to_spt("x = a % b")
    assert "#%#" in collect_labels(spt)


def test_comparison_chain():
    spt = python_to_spt("ok = 0 <= x < 10")
    assert any("<=" in lab and "<" in lab for lab in collect_labels(spt))


def test_comprehension():
    spt = python_to_spt("[i * 2 for i in xs if i > 0]")
    assert any("for#in#" in lab for lab in collect_labels(spt))


def test_class_definition():
    spt = python_to_spt("class Foo(Base):\n    def bar(self):\n        pass")
    toks = leaves_tokens(spt)
    assert "Foo" in toks and "Base" in toks and "bar" in toks


def test_try_except_finally():
    src = """
try:
    risky()
except ValueError as e:
    handle(e)
finally:
    cleanup()
"""
    labels = collect_labels(python_to_spt(src))
    assert any("try:" in lab and "except:" in lab and "finally:" in lab for lab in labels)


def test_partial_snippet_dangling_colon_repaired():
    spt = python_to_spt("def f(x):\n    if x > 0:")
    assert "f" in leaves_tokens(spt)


def test_partial_snippet_trailing_garbage_repaired():
    spt = python_to_spt("x = compute(1)\ny = x +")
    assert "compute" in leaves_tokens(spt)


def test_indented_fragment_repaired():
    spt = python_to_spt("        return num\n")
    assert "return#" in collect_labels(python_to_spt("        return num\n"))
    assert "num" in leaves_tokens(spt)


def test_unparseable_raises():
    with pytest.raises(ParseFailure):
        python_to_spt("£$%^&*@@@~~")


def test_single_token_snippet():
    spt = python_to_spt("foo")
    assert leaves_tokens(spt) == ["foo"]


def test_size_counts_nodes_and_leaves():
    spt = python_to_spt("x = 1")
    assert spt.size() >= 3


def test_render_roundtrips_keywords():
    rendered = python_to_spt("if x:\n    return y").render()
    assert "if" in rendered and "return" in rendered


def test_fstring_collapsed():
    toks = leaves_tokens(python_to_spt('msg = f"value {x}"'))
    assert "<fstr>" in toks


IDENTIFIERS = st.text(alphabet="abcdefgh", min_size=1, max_size=6)


@settings(max_examples=30)
@given(name=IDENTIFIERS, value=st.integers(0, 1000))
def test_assignment_always_parses(name, value):
    spt = python_to_spt(f"{name} = {value}")
    assert name in leaves_tokens(spt)


@settings(max_examples=30)
@given(st.text(max_size=80))
def test_python_to_spt_never_hangs_or_crashes_unexpectedly(source):
    try:
        spt = python_to_spt(source)
        assert isinstance(spt, SPTNode)
    except ParseFailure:
        pass
