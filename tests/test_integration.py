"""Cross-module integration tests: the full stack working together."""

import threading

import pytest

from repro.datasets import generate_corpus
from repro.laminar import LaminarClient
from repro.laminar.server.app import LaminarServer
from repro.laminar.transport.tcp import TcpServerTransport

PIPELINE_WF = """
class Feed(ProducerPE):
    def __init__(self, name=None):
        super().__init__(name)
        self.n = 0
    def _process(self, inputs):
        self.n += 1
        return self.n

class Square(IterativePE):
    def _process(self, x):
        return x * x

class Tail(ConsumerPE):
    def _process(self, x):
        print(f"value {x}")

f, s, t = Feed("Feed"), Square("Square"), Tail("Tail")
graph = WorkflowGraph()
graph.connect(f, "output", s, "input")
graph.connect(s, "output", t, "input")
"""


def test_corpus_to_registry_to_search_roundtrip():
    """Generated corpus PEs register cleanly and are findable three ways."""
    corpus = generate_corpus(60)
    client = LaminarClient()
    for item in corpus:
        client.register_PE(item.pe_source, name=item.pe_name, description=item.description)

    assert len(client.get_Registry()["pes"]) == 60

    # literal: by family description words
    anomaly = next(c for c in corpus if c.family == "zscore_anomaly")
    lit = client.search_Registry_Literal("anomalies", kind="pe")
    assert any(h["peName"] == anomaly.pe_name for h in lit["pes"])

    # semantic: by the family's natural query
    sem = client.search_Registry_Semantic(anomaly.query, top_k=10)
    assert any(h["peName"].startswith(("DetectAnomalies", "FindOutliers", "AnomalyScan"))
               for h in sem)

    # structural: by the family's own code
    rec = client.code_Recommendation(anomaly.function_source, threshold=1.0)
    assert rec and rec[0]["peName"] == anomaly.pe_name


def test_full_stack_over_tcp_with_run_and_search():
    """Server over real sockets: register, run (streamed), search."""
    server = LaminarServer()
    transport = TcpServerTransport(server).start()
    host, port = transport.address
    client = LaminarClient.connect(host, port)
    try:
        client.register("integration", "pw")
        client.login("integration", "pw")
        client.register_Workflow(PIPELINE_WF, name="squares_wf")

        streamed = []
        summary = client.run("squares_wf", input=4, on_line=streamed.append)
        assert summary.ok
        assert streamed == [f"value {i * i}" for i in range(1, 5)]

        results = client.search_Registry_Semantic("squares numbers")
        assert results
    finally:
        client.close()
        transport.stop()


def test_concurrent_clients_one_server():
    """Several TCP clients registering and running simultaneously."""
    server = LaminarServer()
    transport = TcpServerTransport(server).start()
    host, port = transport.address
    errors = []

    def session(i):
        try:
            c = LaminarClient.connect(host, port, timeout=120.0)
            code = PIPELINE_WF.replace("Feed", f"Feed{i}").replace(
                "Square", f"Square{i}"
            ).replace("Tail", f"Tail{i}")
            c.register_Workflow(code, name=f"wf{i}")
            summary = c.run(f"wf{i}", input=3)
            assert summary.ok, summary.error
            c.close()
        except Exception as exc:  # surface in main thread
            errors.append(f"client {i}: {exc}")

    threads = [threading.Thread(target=session, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    transport.stop()
    if errors:
        import pytest

        pytest.fail("concurrent sessions failed: " + " | ".join(errors))
    assert len(server.workflows.all()) == 4


def test_execution_history_accumulates():
    client = LaminarClient()
    client.register_Workflow(PIPELINE_WF, name="wf")
    server = client._transport._server
    wf = server.workflows.by_name("wf")
    for _ in range(3):
        assert client.run("wf", input=2).ok
    executions = server.executions.for_workflow(wf.workflowId)
    assert len(executions) == 3
    assert all(e.status == "success" for e in executions)
    for e in executions:
        responses = server.responses.for_execution(e.executionId)
        assert len(responses) == 1


def test_registered_corpus_workflow_runs():
    """A corpus PE embedded in a workflow executes through the engine."""
    corpus = generate_corpus(10)
    item = next(c for c in corpus if c.family == "is_prime")
    wf = f"""
{item.pe_source}

class Numbers(ProducerPE):
    def __init__(self, name=None):
        super().__init__(name)
        self.n = 0
    def _process(self, inputs):
        self.n += 1
        return self.n

n = Numbers("Numbers")
p = {item.pe_name}()
p.name = "Prime"
graph = WorkflowGraph()
graph.connect(n, "output", p, "input")
"""
    client = LaminarClient()
    client.register_Workflow(wf, name="prime_check_wf")
    summary = client.run("prime_check_wf", input=10)
    assert summary.ok
    flags = summary.outputs["Prime.output"]
    # first 10 integers: 2,3,5,7 are prime
    assert flags.count(True) == 4
