"""Client/server over TCP: framed streaming and the resource handshake.

Runs a real Laminar server on a localhost TCP port (the HTTP/2-style
framed transport of §IV-E), connects a client, and demonstrates:

* remote registration and search;
* a streamed run where output lines arrive *while* the workflow is still
  executing (timestamps prove it);
* the §IV-F resource handshake — the first run uploads a data file, the
  second run transfers zero bytes because the cache already holds it.

Run:  python examples/client_server_tcp.py
"""

import tempfile
import time
from pathlib import Path

from repro.laminar import LaminarClient
from repro.laminar.server.app import LaminarServer
from repro.laminar.transport.tcp import TcpServerTransport

SLOW_WF = """
import time

class SlowTicker(ProducerPE):
    \"\"\"Emits one tick per iteration with a small delay.\"\"\"
    def _process(self, inputs):
        time.sleep(0.05)
        print("tick")
        return 1

t = SlowTicker("SlowTicker")
graph = WorkflowGraph()
graph.add(t)
"""

CSV_WF = """
class CsvSum(ProducerPE):
    def _process(self, inputs):
        with open(RESOURCES["values.csv"]) as fh:
            total = sum(int(x) for line in fh for x in line.strip().split(","))
        print(f"total={total}")
        return total

g = WorkflowGraph()
g.add(CsvSum("CsvSum"))
"""


def main() -> None:
    server = LaminarServer()
    transport = TcpServerTransport(server).start()
    host, port = transport.address
    print(f"server listening on {host}:{port}")

    client = LaminarClient.connect(host, port)
    try:
        client.register_Workflow(SLOW_WF, name="slow_wf")

        print("\n=== streamed run: lines arrive before the run finishes ===")
        start = time.perf_counter()
        arrivals = []
        summary = client.run(
            "slow_wf",
            input=5,
            on_line=lambda line: arrivals.append(time.perf_counter() - start),
        )
        total = time.perf_counter() - start
        for i, at in enumerate(arrivals):
            print(f"  tick {i} arrived at {at * 1e3:6.1f} ms")
        print(f"  run finished at {total * 1e3:6.1f} ms — "
              f"first line after only {arrivals[0] / total:.0%} of the run")

        print("\n=== resource handshake and caching ===")
        with tempfile.TemporaryDirectory() as tmp:
            data = Path(tmp) / "values.csv"
            data.write_text("1,2,3\n4,5,6\n")
            client.register_Workflow(CSV_WF, name="csv_wf")
            before = server.engine.cache.stats.bytes_uploaded
            client.run("csv_wf", input=1, resources=[data])
            first = server.engine.cache.stats.bytes_uploaded - before
            client.run("csv_wf", input=1, resources=[data])
            second = server.engine.cache.stats.bytes_uploaded - before - first
            print(f"  first run uploaded {first} bytes; second run uploaded {second}")
    finally:
        client.close()
        transport.stop()


if __name__ == "__main__":
    main()
