"""Real-time ingestion: pushing a live feed into a running workflow.

The paper lists "support for ... real-time data streams within
serverless environments" among Laminar 2.0's contributions.  This
example keeps a workflow *live* with :class:`repro.d4py.realtime.
StreamSession`: a simulated market feed pushes ticks from a background
thread while the main thread watches results accumulate, then the
session drains and reports.

Run:  python examples/live_stream_ingestion.py
"""

import random
import threading
import time

from repro.d4py import GenericPE, IterativePE, WorkflowGraph
from repro.d4py.lib import MapPE
from repro.d4py.realtime import StreamSession


class Enrich(IterativePE):
    """Tags each tick with a derived field (spread in basis points)."""

    def _process(self, tick):
        bid, ask = tick["bid"], tick["ask"]
        tick["spread_bps"] = round((ask - bid) / bid * 10_000, 2)
        return tick


class PerSymbolStats(GenericPE):
    """Keyed running average spread; grouped on the symbol."""

    def __init__(self, name=None):
        super().__init__(name)
        self._add_input("input", grouping=[0])
        self._add_output("output")
        self.state = {}

    def _process(self, inputs):
        symbol, spread = inputs["input"]
        n, mean = self.state.get(symbol, (0, 0.0))
        n += 1
        mean += (spread - mean) / n
        self.state[symbol] = (n, mean)
        return {"output": (symbol, n, round(mean, 2))}


def build() -> WorkflowGraph:
    graph = WorkflowGraph()
    enrich = Enrich("Enrich")
    key = MapPE(lambda tick: (tick["symbol"], tick["spread_bps"]), name="KeyBySymbol")
    stats = PerSymbolStats("PerSymbolStats")
    graph.connect(enrich, "output", key, "input")
    graph.connect(key, "output", stats, "input")
    return graph


def feed(session: StreamSession, n_ticks: int) -> None:
    rng = random.Random(5)
    for _ in range(n_ticks):
        mid = 100 + rng.random() * 5
        half_spread = 0.01 + rng.random() * 0.05
        session.push(
            {
                "symbol": rng.choice(("ACME", "GLOBEX")),
                "bid": round(mid - half_spread, 4),
                "ask": round(mid + half_spread, 4),
            }
        )
        time.sleep(0.002)  # the feed's own cadence


def main() -> None:
    session = StreamSession(build(), max_workers=4).start()
    feeder = threading.Thread(target=feed, args=(session, 200))
    feeder.start()

    # Watch results accumulate while the feed is still producing.
    for _ in range(4):
        time.sleep(0.1)
        so_far = session.results_so_far().get("PerSymbolStats.output", [])
        print(f"live: {len(so_far)} stat updates, pending tasks: {session.pending()}")

    feeder.join()
    result = session.stop()

    finals = {}
    for symbol, n, mean in result.output_for("PerSymbolStats"):
        finals[symbol] = (n, mean)
    print("\nfinal per-symbol state after drain:")
    for symbol, (n, mean) in sorted(finals.items()):
        print(f"  {symbol:8s} ticks={n:<4} mean spread={mean} bps")
    total = sum(n for n, _ in finals.values())
    assert total == 200, f"lost ticks: {total} != 200"
    print("all 200 live ticks accounted for ✓")


if __name__ == "__main__":
    main()
