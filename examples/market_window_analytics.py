"""Windowed stream analytics with the PE standard library.

A market-data-flavoured pipeline built almost entirely from reusable
PEs (:mod:`repro.d4py.lib`) and functional helpers — the PE-reuse story
of the paper's §II-A, with zero bespoke PE classes for the common
combinators:

    ticks ─▶ Filter(valid) ─▶ Map(normalise) ─▶ SlidingWindow(20)
          ─▶ Map(vwap) ─▶ Distinct ─▶ sink

plus a keyed branch computing per-symbol running volume.  Also renders
the workflow with :mod:`repro.d4py.visualise` before enactment.

Run:  python examples/market_window_analytics.py
"""

import random

from repro.d4py import WorkflowGraph, run_graph
from repro.d4py.functional import producer_from
from repro.d4py.lib import (
    DistinctPE,
    FilterPE,
    KeyedReducePE,
    MapPE,
    SlidingWindowPE,
)
from repro.d4py.visualise import to_text

SYMBOLS = ("ACME", "GLOBEX", "INITECH")


def make_ticks(n: int, seed: int = 3):
    rng = random.Random(seed)
    price = {s: 100.0 for s in SYMBOLS}
    ticks = []
    for _ in range(n):
        sym = rng.choice(SYMBOLS)
        price[sym] *= 1 + rng.uniform(-0.01, 0.01)
        volume = rng.randint(1, 500)
        # ~2% of ticks are malformed (negative volume) and must be dropped
        if rng.random() < 0.02:
            volume = -volume
        ticks.append({"symbol": sym, "price": round(price[sym], 2), "volume": volume})
    return ticks


def vwap(window):
    """Volume-weighted average price over a window of ticks."""
    total_volume = sum(t["volume"] for t in window)
    return round(
        sum(t["price"] * t["volume"] for t in window) / total_volume, 4
    )


def build(ticks) -> WorkflowGraph:
    graph = WorkflowGraph()
    source = producer_from(ticks, name="TickSource")
    valid = FilterPE(lambda t: t["volume"] > 0, name="DropMalformed")
    window = SlidingWindowPE(20, step=5, name="Window20")
    to_vwap = MapPE(vwap, name="VWAP")
    dedupe = DistinctPE(name="DistinctVWAP")

    graph.connect(source, "output", valid, "input")
    graph.connect(valid, "output", window, "input")
    graph.connect(window, "output", to_vwap, "input")
    graph.connect(to_vwap, "output", dedupe, "input")

    # Keyed branch: running traded volume per symbol.
    keyed = MapPE(lambda t: (t["symbol"], t["volume"]), name="KeyBySymbol")
    volume = KeyedReducePE(lambda acc, v: acc + v, name="RunningVolume")
    graph.connect(valid, "output", keyed, "input")
    graph.connect(keyed, "output", volume, "input")
    return graph


def main() -> None:
    ticks = make_ticks(300)
    graph = build(ticks)

    print("=== workflow topology ===")
    print(to_text(graph))

    print("\n=== enactment (dynamic mapping) ===")
    result = run_graph(graph, input=len(ticks), mapping="dynamic", max_workers=4)

    vwaps = result.output_for("DistinctVWAP")
    print(f"windows emitted: {len(vwaps)}; sample VWAPs: {vwaps[:5]}")

    finals = {}
    for symbol, running in result.output_for("RunningVolume"):
        finals[symbol] = max(finals.get(symbol, 0), running)
    print("final traded volume per symbol:")
    for symbol in SYMBOLS:
        print(f"  {symbol:8s} {finals.get(symbol, 0):>8}")

    # cross-check against a plain-Python computation
    expected = {s: 0 for s in SYMBOLS}
    for t in ticks:
        if t["volume"] > 0:
            expected[t["symbol"]] += t["volume"]
    assert finals == expected, "stream totals must match batch totals"
    print("stream totals match batch ground truth ✓")


if __name__ == "__main__":
    main()
