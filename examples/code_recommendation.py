"""Code recommendation from partial snippets (the paper's §VI).

Seeds the registry with PEs from the synthetic CodeSearchNet-PE corpus,
then plays the role of a developer who has typed only the beginning of a
new PE and asks Laminar for recommendations:

* the default structural (SPT/Aroma) recommendation, robust to missing
  code and renamed variables;
* the ``--embedding_type llm`` (ReACC) fallback, good for near-clones;
* the full Aroma pipeline (prune → rerank → cluster) showing the pruned
  code pattern per cluster.

Run:  python examples/code_recommendation.py
"""

from repro.aroma import AromaRecommender
from repro.datasets import generate_corpus
from repro.eval.dropper import drop_suffix
from repro.laminar import LaminarClient


def main() -> None:
    corpus = generate_corpus(120)
    client = LaminarClient()

    print(f"registering {len(corpus)} PEs from the CodeSearchNet-PE corpus...")
    for item in corpus[:120]:
        client.register_PE(
            item.pe_source, name=item.pe_name, description=item.description
        )

    # A developer starts writing a moving-average PE and stops mid-way.
    donor = next(item for item in corpus if item.family == "moving_average")
    partial = drop_suffix(donor.function_source, 0.5)
    print("\n--- the developer has typed ---")
    print(partial)

    print("\n=== structural recommendation (default, 'spt') ===")
    for hit in client.code_Recommendation(partial, threshold=6.0):
        print(f"  score={hit['score']:>6}  {hit['peName']}: {hit['description'][:50]}")

    print("\n=== dense retriever recommendation ('llm' / ReACC) ===")
    for hit in client.code_Recommendation(partial, embedding_type="llm"):
        print(f"  score={hit['score']:>6}  {hit['peName']}: {hit['description'][:50]}")

    print("\n=== full Aroma pipeline: prune + rerank + cluster ===")
    recommender = AromaRecommender().fit(
        [(item.pe_name, item.pe_source, {"family": item.family}) for item in corpus]
    )
    for rec in recommender.recommend(partial, top_n=3):
        print(
            f"  {rec.snippet_id} (cluster of {rec.cluster_size}, "
            f"score {rec.score:.3f})"
        )
        print(f"    pattern: {rec.pruned_code[:100]}...")

    # The paper's Fig 9 one-liner query.
    print("\n=== Fig 9 query: random.randint(1, 1000) ===")
    client.register_PE(
        "class NumberProducer(ProducerPE):\n"
        '    """The number producer class."""\n'
        "    def _process(self, inputs):\n"
        "        return random.randint(1, 1000)\n"
    )
    for hit in client.code_Recommendation("random.randint(1, 1000)"):
        print(f"  score={hit['score']:>6}  {hit['peName']}")


if __name__ == "__main__":
    main()
