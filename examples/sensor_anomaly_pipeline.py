"""Sensor anomaly pipeline: stateful streaming with group-by routing.

The scenario the paper's Fig 8 alludes to ("a pe that is able to detect
anomalies"): a fleet of temperature sensors streams readings; per-sensor
state (a running mean/variance via Welford's algorithm) lives behind a
``group_by`` edge, so the same PE instance always sees the same sensor
regardless of how many parallel instances run; anomalies flow to an
alerting sink.

Shows: stateful PEs, group_by partitioning, the same graph under all
three mappings, and registry search finding the anomaly PE semantically.

Run:  python examples/sensor_anomaly_pipeline.py
"""

import random

from repro.d4py import (
    ConsumerPE,
    GenericPE,
    ProducerPE,
    WorkflowGraph,
    run_graph,
)
from repro.laminar import LaminarClient


class SensorFleet(ProducerPE):
    """Emits (sensor_id, temperature) readings; 1 in 40 is a spike."""

    def __init__(self, name=None, n_sensors=4, seed=11):
        super().__init__(name)
        self.n_sensors = n_sensors
        self._rng = random.Random(seed)

    def _process(self, inputs):
        sensor = f"sensor-{self._rng.randrange(self.n_sensors)}"
        base = 20.0 + 2.0 * self._rng.random()
        if self._rng.random() < 0.025:
            base += 30.0  # a spike worth alerting on
        return (sensor, round(base, 2))


class AnomalyDetector(GenericPE):
    """Per-sensor z-score anomaly detection with Welford running stats.

    The input is grouped on the sensor id (element 0), so the running
    statistics are exact even when this PE runs many instances.
    """

    def __init__(self, name=None, threshold=3.0, warmup=8):
        super().__init__(name)
        self._add_input("input", grouping=[0])
        self._add_output("output")
        self.threshold = threshold
        self.warmup = warmup
        self.state = {}

    def _process(self, inputs):
        sensor, value = inputs["input"]
        n, mean, m2 = self.state.get(sensor, (0, 0.0, 0.0))
        n += 1
        delta = value - mean
        mean += delta / n
        m2 += delta * (value - mean)
        self.state[sensor] = (n, mean, m2)
        if n > self.warmup:
            std = (m2 / n) ** 0.5
            if std > 0 and abs(value - mean) / std > self.threshold:
                self.write("output", (sensor, value, round(mean, 2)))
        return None


class AlertSink(ConsumerPE):
    """Prints a warning line for each suspicious reading it receives."""

    def _process(self, alert):
        sensor, value, mean = alert
        self.log(f"ALERT {sensor}: reading {value} deviates from mean {mean}")


def build_graph() -> WorkflowGraph:
    graph = WorkflowGraph()
    fleet = SensorFleet("SensorFleet")
    detector = AnomalyDetector("AnomalyDetector")
    sink = AlertSink("AlertSink")
    graph.connect(fleet, "output", detector, "input")
    graph.connect(detector, "output", sink, "input")
    return graph


def main() -> None:
    readings = 600

    print("=== local enactment under all three mappings ===")
    for mapping, options in (
        ("simple", {}),
        ("multi", {"num_processes": 6}),
        ("dynamic", {"max_workers": 4, "instances_per_pe": 4}),
    ):
        result = run_graph(build_graph(), input=readings, mapping=mapping, **options)
        alerts = [l for l in result.logs if "ALERT" in l]
        print(f"  {mapping:8s}: {readings} readings -> {len(alerts)} alerts")

    print("\n=== the Fig 8 search: finding the anomaly PE semantically ===")
    client = LaminarClient()
    import inspect

    for pe_class in (SensorFleet, AnomalyDetector, AlertSink):
        client.register_PE(inspect.getsource(pe_class))
    for hit in client.search_Registry_Semantic("a pe that is able to detect anomalies"):
        print(f"  {hit['cosine_similarity']:.4f}  {hit['peName']}")


if __name__ == "__main__":
    main()
