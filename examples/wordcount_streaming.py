"""Streaming word count: fan-out writes and stateful keyed aggregation.

The "hello world" of stream processing, written as a dispel4py workflow:
a line source fans each line out into (word, 1) pairs (several writes per
input — PEs are not one-in/one-out), and a keyed counter accumulates
per-word totals behind a group_by edge.  The same abstract graph runs
under all three mappings, and this example verifies they agree.

Run:  python examples/wordcount_streaming.py
"""

import time

from repro.d4py import (
    GenericPE,
    IterativePE,
    ProducerPE,
    WorkflowGraph,
    run_graph,
)

TEXT = (
    "the quick brown fox jumps over the lazy dog "
    "the dog sleeps while the fox runs "
    "streams of words flow through the workflow like water"
).split(" . ")

CORPUS = [
    "the quick brown fox jumps over the lazy dog",
    "the dog sleeps while the fox runs",
    "streams of words flow through the workflow like water",
    "the fox and the dog count words all day",
] * 25  # 100 lines


class LineSource(ProducerPE):
    """Replays the corpus, one line per iteration."""

    def __init__(self, name=None):
        super().__init__(name)
        self._i = 0

    def _process(self, inputs):
        line = CORPUS[self._i % len(CORPUS)]
        self._i += 1
        return line


class Tokenize(IterativePE):
    """Splits a line into (word, 1) pairs — several writes per input."""

    def _process(self, line):
        for word in line.split():
            self.write(self.OUTPUT_NAME, (word, 1))
        return None


class CountWords(GenericPE):
    """Keyed running counts; grouped on the word so state is exact."""

    def __init__(self, name=None):
        super().__init__(name)
        self._add_input("input", grouping=[0])
        self._add_output("output")
        self.counts = {}

    def _process(self, inputs):
        word, n = inputs["input"]
        self.counts[word] = self.counts.get(word, 0) + n
        return {"output": (word, self.counts[word])}


def build() -> WorkflowGraph:
    graph = WorkflowGraph()
    source, tokenize, count = LineSource("LineSource"), Tokenize("Tokenize"), CountWords("CountWords")
    graph.connect(source, "output", tokenize, "input")
    graph.connect(tokenize, "output", count, "input")
    return graph


def final_counts(result) -> dict:
    totals: dict[str, int] = {}
    for word, running in result.output_for("CountWords"):
        totals[word] = max(totals.get(word, 0), running)
    return totals


def main() -> None:
    lines = len(CORPUS)
    reference = None
    for mapping, options in (
        ("simple", {}),
        ("multi", {"num_processes": 6}),
        ("dynamic", {"max_workers": 4}),
    ):
        start = time.perf_counter()
        result = run_graph(build(), input=lines, mapping=mapping, **options)
        elapsed = time.perf_counter() - start
        counts = final_counts(result)
        top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
        print(f"{mapping:8s} ({elapsed * 1e3:7.1f} ms)  top words: {top}")
        if reference is None:
            reference = counts
        else:
            assert counts == reference, f"{mapping} disagrees with simple!"
    print("all mappings agree ✓")


if __name__ == "__main__":
    main()
