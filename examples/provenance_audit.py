"""Provenance capture: auditing a workflow result back to its inputs.

Scientific workflows need to answer "where did this number come from?"
— dispel4py's provenance capture records, for every data item, the PE
invocation that produced it and the items it was derived from.  This
example runs a small quality-control pipeline with provenance enabled
and prints the complete derivation chain of each flagged result, plus
the engine's per-PE hotspot report.

Run:  python examples/provenance_audit.py
"""

from repro.d4py import ConsumerPE, IterativePE, ProducerPE, WorkflowGraph, run_graph


class Samples(ProducerPE):
    """Emits raw sensor samples, some of them corrupted (negative)."""

    DATA = [12.1, 11.8, -3.0, 12.4, 55.9, 11.9, 12.2, -1.5, 12.0, 12.3]

    def __init__(self, name=None):
        super().__init__(name)
        self._i = 0

    def _process(self, inputs):
        value = self.DATA[self._i % len(self.DATA)]
        self._i += 1
        return value


class Clean(IterativePE):
    """Drops physically impossible (negative) samples."""

    def _process(self, value):
        return value if value >= 0 else None


class Flag(IterativePE):
    """Flags samples far from the nominal 12.0 reading."""

    def _process(self, value):
        if abs(value - 12.0) > 5.0:
            return ("SUSPECT", value)
        return None


class Report(ConsumerPE):
    def _process(self, flagged):
        self.log(f"flagged: {flagged}")


def main() -> None:
    graph = WorkflowGraph()
    samples, clean, flag, report = Samples("Samples"), Clean("Clean"), Flag("Flag"), Report("Report")
    graph.connect(samples, "output", clean, "input")
    graph.connect(clean, "output", flag, "input")
    graph.connect(flag, "output", report, "input")

    result = run_graph(graph, input=len(Samples.DATA), provenance=True)
    trace = result.provenance

    print("=== flagged items and their full derivation chains ===")
    for item in trace.items_produced_by("Flag"):
        print(trace.describe(item.item_id))
        print()

    print("=== enactment accounting ===")
    print(f"invocations recorded : {len(trace.invocations)}")
    print(f"items recorded       : {len(trace.items)}")
    print(f"hotspot PE           : {result.hotspot()}")
    for label, seconds in sorted(result.timings.items()):
        print(f"  {label:10s} {seconds * 1e6:8.1f} µs")


if __name__ == "__main__":
    main()
