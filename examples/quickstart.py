"""Quickstart: the paper's isprime workflow, end to end.

Reproduces the session of the paper's Fig 5: register the ``isprime_wf``
workflow (a random-number producer, a prime filter and a printer), then
run it sequentially, with static multiprocessing (9 processes, the
Fig 5b partition) and with dynamic workload allocation — all through the
Table I client API against an embedded serverless Laminar server.

Run:  python examples/quickstart.py
"""

from repro.laminar import LaminarClient

ISPRIME_WF = '''
import random

class NumberProducer(ProducerPE):
    """Produces a random number between 1 and 1000 per iteration."""
    def _process(self, inputs):
        return random.randint(1, 1000)

class IsPrime(IterativePE):
    """Checks whether a given number is prime and returns the number if it is."""
    def _process(self, num):
        if num > 1 and all(num % i != 0 for i in range(2, num)):
            return num

class PrintPrime(ConsumerPE):
    """Prints every prime number it receives."""
    def _process(self, num):
        print(f"the num {num} is prime")

producer = NumberProducer("NumberProducer")
isprime = IsPrime("IsPrime")
printer = PrintPrime("PrintPrime")
graph = WorkflowGraph()
graph.connect(producer, "output", isprime, "input")
graph.connect(isprime, "output", printer, "input")
'''


def main() -> None:
    client = LaminarClient()  # embedded serverless server

    print("=== registering isprime_wf (paper Fig 5a) ===")
    body = client.register_Workflow(ISPRIME_WF, name="isprime_wf")
    for pe in body["pes"]:
        print(f"  • {pe['peName']} - type (ID {pe['peId']})")
    wf = body["workflow"]
    print(f"  • {wf['workflowName']} - Workflow (ID {wf['workflowId']})")

    print("\n=== sequential run, output streamed line by line ===")
    summary = client.run("isprime_wf", input=10, on_line=lambda l: print(" ", l))
    print(f"  status={summary.status}, primes={len(summary.lines)}")

    print("\n=== parallel run: 9 processes (paper Fig 5b) ===")
    summary = client.run_multiprocess("isprime_wf", input=10, num_processes=9, verbose=True)
    for line in summary.logs:
        print(" ", line)

    print("\n=== dynamic run (paper Listing 3: one argument!) ===")
    summary = client.run_dynamic("isprime_wf", input=5)
    print(f"  status={summary.status}, iterations={summary.iterations}")

    print("\n=== semantic search (paper Fig 8) ===")
    for hit in client.search_Registry_Semantic("checks if numbers are prime"):
        print(f"  {hit['cosine_similarity']:.4f}  {hit['peName']}: {hit['description'][:60]}")

    print("\n=== code recommendation (paper Fig 9) ===")
    for hit in client.code_Recommendation("random.randint(1, 1000)"):
        print(f"  score={hit['score']}  {hit['peName']}")


if __name__ == "__main__":
    main()
